package core

import "matryoshka/internal/engine"

// InnerBag represents a Bag variable inside a lifted UDF (Sec. 4.4). Where
// the original UDF held one bag per invocation, the lifted program holds a
// single flat Bag[(Tag, E)] containing the elements of *all* the inner
// bags, each tagged with its invocation.
type InnerBag[E any] struct {
	repr engine.Dataset[engine.Pair[Tag, E]]
	ctx  *Ctx
}

// BagFromRepr wraps an existing flat representation.
func BagFromRepr[E any](ctx *Ctx, repr engine.Dataset[engine.Pair[Tag, E]]) InnerBag[E] {
	return InnerBag[E]{repr: repr, ctx: ctx}
}

// Repr exposes the flat bag representing the InnerBag.
func (b InnerBag[E]) Repr() engine.Dataset[engine.Pair[Tag, E]] { return b.repr }

// Ctx returns the LiftingContext this bag belongs to.
func (b InnerBag[E]) Ctx() *Ctx { return b.ctx }

// Cache materializes the representation on first use.
func (b InnerBag[E]) Cache() InnerBag[E] {
	b.repr = b.repr.Cache()
	return b
}

// CollectGroups gathers all inner bags keyed by tag (output operation).
func (b InnerBag[E]) CollectGroups() (map[Tag][]E, error) {
	elems, err := engine.Collect(b.repr)
	if err != nil {
		return nil, err
	}
	out := make(map[Tag][]E)
	for _, p := range elems {
		out[p.Key] = append(out[p.Key], p.Val)
	}
	return out, nil
}

// --- Stateless lifted operations (Sec. 4.4): the UDF applies to the value
// component; tags are forwarded unchanged. ---

// MapBag lifts map.
func MapBag[A, B any](b InnerBag[A], f func(A) B) InnerBag[B] {
	repr := engine.Map(b.repr, func(p engine.Pair[Tag, A]) engine.Pair[Tag, B] {
		return engine.KV(p.Key, f(p.Val))
	})
	return InnerBag[B]{repr: repr, ctx: b.ctx}
}

// FilterBag lifts filter.
func FilterBag[E any](b InnerBag[E], pred func(E) bool) InnerBag[E] {
	repr := engine.Filter(b.repr, func(p engine.Pair[Tag, E]) bool { return pred(p.Val) })
	return InnerBag[E]{repr: repr, ctx: b.ctx}
}

// FlatMapBag lifts flatMap.
func FlatMapBag[A, B any](b InnerBag[A], f func(A) []B) InnerBag[B] {
	repr := engine.FlatMap(b.repr, func(p engine.Pair[Tag, A]) []engine.Pair[Tag, B] {
		bs := f(p.Val)
		out := make([]engine.Pair[Tag, B], len(bs))
		for i, v := range bs {
			out[i] = engine.KV(p.Key, v)
		}
		return out
	})
	return InnerBag[B]{repr: repr, ctx: b.ctx}
}

// --- Stateful lifted operations keep their state per tag (Sec. 4.4). ---

// reduceByTag reduces a tag-keyed bag. When the context's tag set is
// cardinality-bounded (weight 1, the usual case at the first nesting
// level), the result is marked unscaled so the simulator costs its rows as
// the per-group scalars they are; deeper tag sets that scale with the data
// (e.g. per-vertex BFS sources) keep their weight.
func reduceByTag[V any](ctx *Ctx, d engine.Dataset[engine.Pair[Tag, V]], f func(V, V) V) engine.Dataset[engine.Pair[Tag, V]] {
	if ctx.Tags.Weight() <= 1 {
		return engine.ReduceByKeyBound(d, f, ctx.Parts)
	}
	return engine.ReduceByKeyN(d, f, ctx.Parts)
}

// ReduceBag lifts reduce: a reduceByKey with the tag as the key, producing
// an InnerScalar. Inner bags that are empty produce no element, matching
// the semantics of reduce being undefined on empty bags; use AggregateBag
// or CountBag for operations with a defined empty-bag result.
func ReduceBag[E any](b InnerBag[E], f func(E, E) E) InnerScalar[E] {
	repr := reduceByTag(b.ctx, b.repr, f)
	return InnerScalar[E]{repr: repr, ctx: b.ctx}
}

// AggregateBag lifts a fold with zero value: like ReduceBag but inner bags
// with no elements yield zero. The zero rows come from the per-UDF tag bag
// (Sec. 4.4: "To handle operations that produce output for empty input
// bags ... we additionally need to store all the tags in a separate bag").
func AggregateBag[E, A any](b InnerBag[E], zero A, add func(A, E) A, merge func(A, A) A) InnerScalar[A] {
	partial := engine.Map(b.repr, func(p engine.Pair[Tag, E]) engine.Pair[Tag, A] {
		return engine.KV(p.Key, add(zero, p.Val))
	})
	zeros := engine.Map(b.ctx.Tags, func(t Tag) engine.Pair[Tag, A] {
		return engine.KV(t, zero)
	})
	repr := reduceByTag(b.ctx, engine.Union(partial, zeros), merge)
	return InnerScalar[A]{repr: repr, ctx: b.ctx}
}

// CountBag lifts count, producing 0 for empty inner bags.
func CountBag[E any](b InnerBag[E]) InnerScalar[int64] {
	return AggregateBag(b, 0, func(a int64, _ E) int64 { return a + 1 },
		func(x, y int64) int64 { return x + y })
}

// DistinctBag lifts distinct: deduplicating (Tag, E) pairs deduplicates
// within each inner bag — the lifted version is "simply identical to the
// original operation" (Sec. 4.4).
func DistinctBag[E comparable](b InnerBag[E]) InnerBag[E] {
	return InnerBag[E]{repr: engine.Distinct(b.repr), ctx: b.ctx}
}

// UnionBags lifts bag union.
func UnionBags[E any](a, b InnerBag[E]) InnerBag[E] {
	return InnerBag[E]{repr: engine.Union(a.repr, b.repr), ctx: a.ctx}
}

// tagKey is the composite key of Sec. 4.4: the original key plus the tag.
type tagKey[K comparable] struct {
	T Tag
	K K
}

// ReduceByKeyBag lifts reduceByKey: re-key by (tag, key), reduce, re-key
// back — the exact three-operator rewrite given in Sec. 4.4.
func ReduceByKeyBag[K comparable, V any](b InnerBag[engine.Pair[K, V]], f func(V, V) V) InnerBag[engine.Pair[K, V]] {
	rekeyed := engine.Map(b.repr, func(p engine.Pair[Tag, engine.Pair[K, V]]) engine.Pair[tagKey[K], V] {
		return engine.KV(tagKey[K]{p.Key, p.Val.Key}, p.Val.Val)
	})
	reduced := engine.ReduceByKey(rekeyed, f)
	repr := engine.Map(reduced, func(p engine.Pair[tagKey[K], V]) engine.Pair[Tag, engine.Pair[K, V]] {
		return engine.KV(p.Key.T, engine.KV(p.Key.K, p.Val))
	})
	return InnerBag[engine.Pair[K, V]]{repr: repr, ctx: b.ctx}
}

// ReduceByKeyBagBound is ReduceByKeyBag for key sets whose cardinality is
// bounded per invocation (e.g. K-means cluster indices, at most k per
// run): the aggregate's row count does not scale with the data, so the
// simulator costs it unscaled, like InnerScalars.
func ReduceByKeyBagBound[K comparable, V any](b InnerBag[engine.Pair[K, V]], f func(V, V) V) InnerBag[engine.Pair[K, V]] {
	rekeyed := engine.Map(b.repr, func(p engine.Pair[Tag, engine.Pair[K, V]]) engine.Pair[tagKey[K], V] {
		return engine.KV(tagKey[K]{p.Key, p.Val.Key}, p.Val.Val)
	})
	reduced := engine.ReduceByKeyBound(rekeyed, f, 0)
	repr := engine.Map(reduced, func(p engine.Pair[tagKey[K], V]) engine.Pair[Tag, engine.Pair[K, V]] {
		return engine.KV(p.Key.T, engine.KV(p.Key.K, p.Val))
	})
	return InnerBag[engine.Pair[K, V]]{repr: repr, ctx: b.ctx}
}

// GroupByKeyBag lifts groupByKey with the same composite re-keying.
func GroupByKeyBag[K comparable, V any](b InnerBag[engine.Pair[K, V]]) InnerBag[engine.Pair[K, []V]] {
	rekeyed := engine.Map(b.repr, func(p engine.Pair[Tag, engine.Pair[K, V]]) engine.Pair[tagKey[K], V] {
		return engine.KV(tagKey[K]{p.Key, p.Val.Key}, p.Val.Val)
	})
	grouped := engine.GroupByKey(rekeyed)
	repr := engine.Map(grouped, func(p engine.Pair[tagKey[K], []V]) engine.Pair[Tag, engine.Pair[K, []V]] {
		return engine.KV(p.Key.T, engine.KV(p.Key.K, p.Val))
	})
	return InnerBag[engine.Pair[K, []V]]{repr: repr, ctx: b.ctx}
}

// JoinBags lifts an equi-join between two inner bags of the same UDF,
// re-keying both sides by (tag, key) so matches stay within an invocation.
func JoinBags[K comparable, A, B any](l InnerBag[engine.Pair[K, A]], r InnerBag[engine.Pair[K, B]]) InnerBag[engine.Pair[K, engine.Tuple2[A, B]]] {
	lk := engine.Map(l.repr, func(p engine.Pair[Tag, engine.Pair[K, A]]) engine.Pair[tagKey[K], A] {
		return engine.KV(tagKey[K]{p.Key, p.Val.Key}, p.Val.Val)
	})
	rk := engine.Map(r.repr, func(p engine.Pair[Tag, engine.Pair[K, B]]) engine.Pair[tagKey[K], B] {
		return engine.KV(tagKey[K]{p.Key, p.Val.Key}, p.Val.Val)
	})
	joined := engine.Join(lk, rk)
	repr := engine.Map(joined, func(p engine.Pair[tagKey[K], engine.Tuple2[A, B]]) engine.Pair[Tag, engine.Pair[K, engine.Tuple2[A, B]]] {
		return engine.KV(p.Key.T, engine.KV(p.Key.K, p.Val))
	})
	return InnerBag[engine.Pair[K, engine.Tuple2[A, B]]]{repr: repr, ctx: l.ctx}
}

// CrossBags lifts the cartesian product of two inner bags of the same
// UDF: every pair of elements within an invocation meets (the "cross
// products in some flattened operations" of Sec. 4.4). Implemented as a
// tag join, so each invocation's product stays separate.
func CrossBags[A, B any](l InnerBag[A], r InnerBag[B]) InnerBag[engine.Tuple2[A, B]] {
	joined := engine.Join(l.repr, r.repr)
	repr := engine.Map(joined, func(p engine.Pair[Tag, engine.Tuple2[A, B]]) engine.Pair[Tag, engine.Tuple2[A, B]] {
		return engine.KV(p.Key, p.Val)
	})
	return InnerBag[engine.Tuple2[A, B]]{repr: repr, ctx: l.ctx}
}

// FlattenBag implements the flatten of Sec. 4.6 (used to lift flatMap at
// the outer level): it simply removes the tags.
func FlattenBag[E any](b InnerBag[E]) engine.Dataset[E] {
	return engine.Values(b.repr)
}
