package core

import (
	"fmt"

	"matryoshka/internal/engine"
	"matryoshka/internal/obs"
)

// This file is the lowering phase's optimizer (Sec. 8). Every decision uses
// information the nesting primitives expose *before* the data is computed:
// the InnerScalar size (= tag count) from the LiftingContext, and the fact
// that tags are unique join keys.
//
// Each rule logs its choice — and the observed sizes that justified it — to
// the session's event recorder (engine.Config.Obs), so EXPLAIN ANALYZE can
// show why every physical implementation was picked.

// decide records an optimizer decision on the session's event spine.
func (c *Ctx) decide(rule, choice string, forced bool, whyFormat string, args ...any) {
	rec := c.Sess.Obs()
	if !rec.Enabled() {
		return
	}
	rec.Decide(obs.Decision{Rule: rule, Choice: choice, Forced: forced, Why: fmt.Sprintf(whyFormat, args...)})
}

// defaultScalarsPerPartition targets enough elements per partition that the
// per-partition overhead does not dominate (Sec. 8.1: "it is important to
// set the number of partitions in accordance with the bag's size").
const defaultScalarsPerPartition = 4096

// partsFor picks the partition count for a bag of `size` InnerScalar
// elements: as few partitions as keep per-partition work reasonable, capped
// by the engine's default parallelism.
func (c *Ctx) partsFor(size int64) int {
	target := c.Opt.TargetScalarsPerPartition
	if target <= 0 {
		target = defaultScalarsPerPartition
	}
	p := int((size + target - 1) / target)
	if p < 1 {
		p = 1
	}
	if max := c.Sess.DefaultParallelism(); p > max {
		p = max
	}
	// Run-time feedback: if adaptive recovery had to raise partition counts
	// to survive a task OOM in this session, start later lowerings at the
	// raised factor instead of rediscovering the OOM.
	if boost := c.Sess.Feedback().PartsBoost(); boost > 1 {
		p *= boost
		c.decide("partitions", fmt.Sprintf("%d", p), true,
			"retried-after-OOM: session feedback raised partition counts %dx after a task OOM", boost)
		return p
	}
	c.decide("partitions", fmt.Sprintf("%d", p), false,
		"Sec. 8.1: %d inner scalars / target %d per partition, capped at parallelism %d", size, target, c.Sess.DefaultParallelism())
	return p
}

// ScalarJoinStrategy picks the algorithm for an InnerScalar⋈InnerScalar
// tag join (binaryScalarOp, Sec. 4.3). Both sides have exactly Size
// elements with unique keys, so: repartition when there are enough
// elements to fill every partition of the engine's default parallelism
// (the paper sets parallelism to 3x the core count, Sec. 9.1), broadcast
// otherwise (Sec. 8.2). Broadcasting below the threshold also keeps tag
// joins skew-immune: a repartition join partitioned by the tag would put a
// Zipf head group's entire state into one task (cf. Sec. 9.5).
func (c *Ctx) ScalarJoinStrategy() engine.JoinStrategy {
	if f := c.Opt.ForceScalarJoin; f != nil {
		c.decide("scalar-join", f.String(), true, "Options.ForceScalarJoin override")
		return *f
	}
	if why, denied := c.Sess.Feedback().Denied("join", "broadcast"); denied {
		c.decide("scalar-join", engine.JoinRepartition.String(), true, "retried-after-OOM: %s", why)
		return engine.JoinRepartition
	}
	if c.Size >= int64(c.Sess.DefaultParallelism()) {
		c.decide("scalar-join", engine.JoinRepartition.String(), false,
			"Sec. 8.2: %d tags >= parallelism %d", c.Size, c.Sess.DefaultParallelism())
		return engine.JoinRepartition
	}
	c.decide("scalar-join", engine.JoinBroadcastLeft.String(), false,
		"Sec. 8.2: %d tags < parallelism %d", c.Size, c.Sess.DefaultParallelism())
	return engine.JoinBroadcastLeft
}

// BagScalarJoinStrategy picks the algorithm for an InnerBag⋈InnerScalar
// tag join (mapWithClosure, Sec. 5.1; the loop-condition join of Listing 4,
// line 5). The InnerScalar side is the *left* input of the join. Broadcast
// the scalar side while it is small; repartition once it is large enough to
// occupy the cluster (Sec. 8.2).
func (c *Ctx) BagScalarJoinStrategy() engine.JoinStrategy {
	if f := c.Opt.ForceScalarJoin; f != nil {
		c.decide("bag-scalar-join", f.String(), true, "Options.ForceScalarJoin override")
		return *f
	}
	if why, denied := c.Sess.Feedback().Denied("join", "broadcast"); denied {
		c.decide("bag-scalar-join", engine.JoinRepartition.String(), true, "retried-after-OOM: %s", why)
		return engine.JoinRepartition
	}
	if c.Size >= int64(c.Sess.DefaultParallelism()) {
		c.decide("bag-scalar-join", engine.JoinRepartition.String(), false,
			"Sec. 8.2: %d tags >= parallelism %d", c.Size, c.Sess.DefaultParallelism())
		return engine.JoinRepartition
	}
	c.decide("bag-scalar-join", engine.JoinBroadcastLeft.String(), false,
		"Sec. 8.2: %d tags < parallelism %d", c.Size, c.Sess.DefaultParallelism())
	return engine.JoinBroadcastLeft
}

// ShredChoice selects the physical representation of a nested bag built
// by GroupByKeyIntoNestedBag: materialize each group's inner bag in one
// task at consumption boundaries (the paper's lowering), or keep the
// shredded flat/dictionary form (internal/shred) and un-shred through a
// spill group-by plus dictionary join. Both produce bit-identical
// nested values; they differ in where the memory goes.
type ShredChoice int

const (
	// ShredMaterialized builds each group's inner bag in one task
	// (engine.GroupByKey) when the nested value is consumed.
	ShredMaterialized ShredChoice = iota
	// ShredShredded keeps inner-bag contents as a flat dictionary and
	// un-shreds through the spill group build (shred.Unshred).
	ShredShredded
)

func (s ShredChoice) String() string {
	if s == ShredMaterialized {
		return "materialized"
	}
	return "shredded"
}

// ForceShredChoice builds the Options override for a ShredChoice.
func ForceShredChoice(s ShredChoice) *ShredChoice { return &s }

// shredBytesPerRow is the assumed real bytes per inner row when sizing a
// group build — the same figure the benchmarks use for record weight
// (bench realBytesPerRecord).
const shredBytesPerRow = 48

// ShredStrategy picks the nested-bag representation from the observed
// group structure: the shredded form wins exactly when materializing the
// largest group in a single task would eat more than half a machine
// (the group's task never runs alone in a wave), after honoring an
// explicit override and this session's OOM feedback.
func (c *Ctx) ShredStrategy(groups, maxGroup, total int64, weight float64) ShredChoice {
	if f := c.Opt.ForceShred; f != nil {
		c.decide("shred", f.String(), true, "Options.ForceShred override")
		return *f
	}
	if why, denied := c.Sess.Feedback().Denied("shred", "materialized"); denied {
		c.decide("shred", ShredShredded.String(), true, "retried-after-OOM: %s", why)
		return ShredShredded
	}
	cl := c.Sess.Config().Cluster
	est := int64(float64(maxGroup) * weight * shredBytesPerRow * cl.MemoryOverheadFactor)
	budget := cl.MemoryPerMachine / 2
	if est > budget {
		c.decide("shred", ShredShredded.String(), false,
			"largest of %d groups has %d rows (of %d): materializing it is ~%dMB resident, over the %dMB half-machine budget",
			groups, maxGroup, total, est>>20, budget>>20)
		return ShredShredded
	}
	c.decide("shred", ShredMaterialized.String(), false,
		"largest of %d groups has %d rows (of %d): materializing it is ~%dMB resident, within the %dMB half-machine budget",
		groups, maxGroup, total, est>>20, budget>>20)
	return ShredMaterialized
}

// HalfLiftedChoice selects the broadcast side of a half-lifted
// mapWithClosure (Sec. 8.3), which is a cross product between the bag
// representing an InnerScalar and a primary input bag from outside the
// lifted UDF.
type HalfLiftedChoice int

const (
	// BroadcastScalar replicates the InnerScalar side.
	BroadcastScalar HalfLiftedChoice = iota
	// BroadcastPrimary replicates the outside (primary) bag.
	BroadcastPrimary
)

func (h HalfLiftedChoice) String() string {
	if h == BroadcastScalar {
		return "broadcast-scalar"
	}
	return "broadcast-primary"
}

// ForceHalf builds the Options override for a HalfLiftedChoice.
func ForceHalf(h HalfLiftedChoice) *HalfLiftedChoice { return &h }

// HalfLiftedStrategy implements Sec. 8.3 verbatim: "If the InnerScalar has
// only 1 partition, we broadcast it. This is quick to check, and it is also
// the common case due to the optimization in Sec. 8.1. Otherwise, we use
// the SizeEstimator to compare the sizes of the two inputs and broadcast
// the smaller one." Unknown sizes are passed as -1.
func (c *Ctx) HalfLiftedStrategy(scalarBytes, primaryBytes int64) HalfLiftedChoice {
	if f := c.Opt.ForceHalfLifted; f != nil {
		c.decide("half-lifted", f.String(), true, "Options.ForceHalfLifted override")
		return *f
	}
	// Run-time feedback: never re-pick a side that adaptive recovery
	// demoted after an OOM in this session.
	fb := c.Sess.Feedback()
	if why, denied := fb.Denied("half-lifted", BroadcastScalar.String()); denied {
		if _, both := fb.Denied("half-lifted", BroadcastPrimary.String()); !both {
			c.decide("half-lifted", BroadcastPrimary.String(), true, "retried-after-OOM: %s", why)
			return BroadcastPrimary
		}
	}
	if why, denied := fb.Denied("half-lifted", BroadcastPrimary.String()); denied {
		c.decide("half-lifted", BroadcastScalar.String(), true, "retried-after-OOM: %s", why)
		return BroadcastScalar
	}
	if c.Parts == 1 {
		c.decide("half-lifted", BroadcastScalar.String(), false, "Sec. 8.3: InnerScalar has 1 partition")
		return BroadcastScalar
	}
	if scalarBytes >= 0 && primaryBytes >= 0 && primaryBytes < scalarBytes {
		c.decide("half-lifted", BroadcastPrimary.String(), false,
			"Sec. 8.3: primary %dB < scalar %dB (SizeEstimator)", primaryBytes, scalarBytes)
		return BroadcastPrimary
	}
	c.decide("half-lifted", BroadcastScalar.String(), false,
		"Sec. 8.3: scalar %dB <= primary %dB (or size unknown)", scalarBytes, primaryBytes)
	return BroadcastScalar
}
