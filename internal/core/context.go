package core

import (
	"matryoshka/internal/engine"
)

// Options carries optimizer overrides, used by the benchmarks of Sec. 9.6
// to force a physical choice and measure the gap to the optimizer's pick.
type Options struct {
	// ForceScalarJoin, when non-nil, fixes the join algorithm for every
	// tag join (InnerScalar⋈InnerScalar and InnerBag⋈InnerScalar)
	// instead of letting the optimizer decide (Fig. 8 left).
	ForceScalarJoin *engine.JoinStrategy
	// ForceHalfLifted, when non-nil, fixes the half-lifted
	// mapWithClosure broadcast side (Fig. 8 right).
	ForceHalfLifted *HalfLiftedChoice
	// ForceShred, when non-nil, fixes the nested-bag representation
	// (materialized vs shredded) instead of letting ShredStrategy pick
	// from observed group sizes (matbench -shred on/off).
	ForceShred *ShredChoice
	// TargetScalarsPerPartition overrides the partition-count rule of
	// Sec. 8.1 (0 = default).
	TargetScalarsPerPartition int64
	// MaxLoopIterations bounds lifted while loops
	// (0 = DefaultMaxIterations).
	MaxLoopIterations int
}

// Force helpers for building Options literals.
func ForceJoin(s engine.JoinStrategy) *engine.JoinStrategy { return &s }

// Ctx is the LiftingContext of Sec. 8.1: per lifted UDF, it records the set
// of tags (one per original UDF invocation) and their count, which is the
// exact size of every InnerScalar inside the UDF. All lifted operations
// receive it and consult it for physical decisions.
type Ctx struct {
	Sess *engine.Session
	// Tags holds every tag of this lifted UDF, cached. Operations that
	// must produce output for empty inner bags (e.g. count) read it
	// (Sec. 4.4, "we store the bag of tags once per lifted UDF").
	Tags engine.Dataset[Tag]
	// Size is the number of tags — known *before* any InnerScalar inside
	// the UDF is computed, which is what enables the optimizations of
	// Sec. 8 (partition counts, join algorithm, broadcast side).
	Size int64
	// Parts is the partition count the optimizer chose for
	// InnerScalar-sized bags in this UDF.
	Parts int
	Opt   Options
}

// NewContext creates a LiftingContext. tags must enumerate each tag exactly
// once; it is cached here. The partition count is sized by the *real* tag
// cardinality — simulated count times the tag dataset's record weight — so
// deeper, data-scaled tag sets get proportionally more partitions.
func NewContext(sess *engine.Session, tags engine.Dataset[Tag], size int64, opt Options) *Ctx {
	c := &Ctx{Sess: sess, Tags: tags.Cache(), Size: size, Opt: opt}
	c.Parts = c.partsFor(realSize(size, c.Tags))
	return c
}

// withTags derives the context of a restricted tag set (loop continuation,
// if-branch). tags must already be cached.
func (c *Ctx) withTags(tags engine.Dataset[Tag], size int64) *Ctx {
	nc := &Ctx{Sess: c.Sess, Tags: tags, Size: size, Opt: c.Opt}
	nc.Parts = nc.partsFor(realSize(size, tags))
	return nc
}

func realSize(size int64, tags engine.Dataset[Tag]) int64 {
	return int64(float64(size) * tags.Weight())
}
