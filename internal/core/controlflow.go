package core

import (
	"fmt"

	"matryoshka/internal/engine"
)

// This file lifts control flow statements (Sec. 6). The parsing phase
// turns while loops and if statements into higher-order function calls
// (Sec. 6.1); While and If below are the lifted implementations those
// calls resolve to in the lowering phase (Sec. 6.2, Listing 4).

// DefaultMaxIterations bounds lifted loops against non-terminating bodies.
const DefaultMaxIterations = 10_000

// StateOps describes how to manage a loop/branch state type S built from
// nesting primitives: produce an empty state, restrict a state to a tag
// subset (rebinding it to the subset's LiftingContext), merge two disjoint
// states, and cache a state's representations between supersteps.
// ScalarState, BagState and State2Ops provide the standard instances; they
// compose to arbitrary shapes.
type StateOps[S any] struct {
	Empty  func(ctx *Ctx) S
	Filter func(s S, keep engine.Dataset[Tag], sub *Ctx) S
	Union  func(a, b S) S
	Cache  func(s S) S
}

// While is the lifted while loop (Listing 4). One iteration of the lifted
// loop runs one iteration of *all* original loops that have not finished:
//
//	P1: state entering the body is restricted to tags whose exit condition
//	    still holds (the tag join + filter of Listing 4 lines 5-6);
//	P2: finished parts are saved into the result as soon as they finish
//	    (lines 7-8);
//	P3: the lifted loop exits when no tags continue (line 9).
//
// body receives the LiftingContext of the still-running tags, so inner
// operations keep making correct physical decisions as the population
// shrinks. The returned condition is true where the original loop would
// run another iteration (do-while semantics: the body runs at least once).
// A body error aborts the loop and is returned as-is.
func While[S any](ctx *Ctx, init S, ops StateOps[S], body func(*Ctx, S) (S, InnerScalar[bool], error)) (S, error) {
	var zero S
	maxIter := ctx.Opt.MaxLoopIterations
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}
	cur := ops.Cache(init)
	curCtx := ctx
	result := ops.Empty(ctx)
	for iter := 0; ; iter++ {
		if iter >= maxIter {
			return zero, fmt.Errorf("core: lifted loop exceeded %d iterations", maxIter)
		}
		next, cond, err := body(curCtx, cur)
		if err != nil {
			return zero, err
		}
		next = ops.Cache(next)
		condRepr := cond.Repr().Cache()

		contTags := engine.Map(engine.Filter(condRepr, func(p engine.Pair[Tag, bool]) bool { return p.Val }),
			func(p engine.Pair[Tag, bool]) Tag { return p.Key }).Cache()
		nCont, err := engine.Count(contTags) // the one action per superstep
		if err != nil {
			return zero, err
		}
		nDone := curCtx.Size - nCont

		if nDone > 0 {
			doneTags := engine.Map(engine.Filter(condRepr, func(p engine.Pair[Tag, bool]) bool { return !p.Val }),
				func(p engine.Pair[Tag, bool]) Tag { return p.Key }).Cache()
			doneCtx := curCtx.withTags(doneTags, nDone)
			finished := ops.Filter(next, doneTags, doneCtx)
			// The union's representation holds exactly the right tags;
			// the result keeps the original full-loop context.
			result = ops.Cache(ops.Union(result, finished))
		}
		if nCont == 0 {
			return result, nil
		}
		contCtx := curCtx.withTags(contTags, nCont)
		if nDone > 0 {
			cur = ops.Cache(ops.Filter(next, contTags, contCtx))
		} else {
			cur = next
		}
		curCtx = contCtx
	}
}

// If is the lifted if statement (Sec. 6.2): both branches execute, each
// receiving only the state of the tags whose condition selects it, and the
// branch results are unioned. A branch error aborts the statement and is
// returned as-is.
func If[S any](ctx *Ctx, cond InnerScalar[bool], state S, ops StateOps[S],
	thenF, elseF func(*Ctx, S) (S, error)) (S, error) {
	var zero S
	condRepr := cond.Repr().Cache()
	thenTags := engine.Map(engine.Filter(condRepr, func(p engine.Pair[Tag, bool]) bool { return p.Val }),
		func(p engine.Pair[Tag, bool]) Tag { return p.Key }).Cache()
	nThen, err := engine.Count(thenTags)
	if err != nil {
		return zero, err
	}
	nElse := ctx.Size - nThen
	elseTags := engine.Map(engine.Filter(condRepr, func(p engine.Pair[Tag, bool]) bool { return !p.Val }),
		func(p engine.Pair[Tag, bool]) Tag { return p.Key }).Cache()

	thenCtx := ctx.withTags(thenTags, nThen)
	elseCtx := ctx.withTags(elseTags, nElse)
	thenRes, err := thenF(thenCtx, ops.Filter(state, thenTags, thenCtx))
	if err != nil {
		return zero, err
	}
	elseRes, err := elseF(elseCtx, ops.Filter(state, elseTags, elseCtx))
	if err != nil {
		return zero, err
	}
	return ops.Union(thenRes, elseRes), nil
}

// filterByTags restricts a tagged representation to a tag subset via a tag
// join (the joinOnTags of Listing 4, line 5), using the subset context's
// join strategy.
func filterByTags[V any](repr engine.Dataset[engine.Pair[Tag, V]], keep engine.Dataset[Tag], sub *Ctx) engine.Dataset[engine.Pair[Tag, V]] {
	keepPairs := engine.Map(keep, func(t Tag) engine.Pair[Tag, struct{}] {
		return engine.KV(t, struct{}{})
	})
	joined := engine.JoinWith(keepPairs, repr, sub.BagScalarJoinStrategy(), 0)
	return engine.Map(joined, func(p engine.Pair[Tag, engine.Tuple2[struct{}, V]]) engine.Pair[Tag, V] {
		return engine.KV(p.Key, p.Val.B)
	})
}

// ScalarState is the StateOps instance for a single InnerScalar.
func ScalarState[S any]() StateOps[InnerScalar[S]] {
	return StateOps[InnerScalar[S]]{
		Empty: func(ctx *Ctx) InnerScalar[S] {
			return InnerScalar[S]{repr: engine.Empty[engine.Pair[Tag, S]](ctx.Sess), ctx: ctx}
		},
		Filter: func(s InnerScalar[S], keep engine.Dataset[Tag], sub *Ctx) InnerScalar[S] {
			return InnerScalar[S]{repr: filterByTags(s.repr, keep, sub), ctx: sub}
		},
		Union: func(a, b InnerScalar[S]) InnerScalar[S] {
			return InnerScalar[S]{repr: engine.Union(a.repr, b.repr), ctx: a.ctx}
		},
		Cache: func(s InnerScalar[S]) InnerScalar[S] { return s.Cache() },
	}
}

// BagState is the StateOps instance for a single InnerBag.
func BagState[E any]() StateOps[InnerBag[E]] {
	return StateOps[InnerBag[E]]{
		Empty: func(ctx *Ctx) InnerBag[E] {
			return InnerBag[E]{repr: engine.Empty[engine.Pair[Tag, E]](ctx.Sess), ctx: ctx}
		},
		Filter: func(b InnerBag[E], keep engine.Dataset[Tag], sub *Ctx) InnerBag[E] {
			return InnerBag[E]{repr: filterByTags(b.repr, keep, sub), ctx: sub}
		},
		Union: func(a, b InnerBag[E]) InnerBag[E] {
			return InnerBag[E]{repr: engine.Union(a.repr, b.repr), ctx: a.ctx}
		},
		Cache: func(b InnerBag[E]) InnerBag[E] { return b.Cache() },
	}
}

// State2 combines two loop-state components (e.g. PageRank's rank InnerBag
// plus an iteration-counter InnerScalar).
type State2[A, B any] struct {
	A A
	B B
}

// State3 combines three loop-state components.
type State3[A, B, C any] struct {
	A A
	B B
	C C
}

// State3Ops composes StateOps for a three-component state.
func State3Ops[A, B, C any](a StateOps[A], b StateOps[B], c StateOps[C]) StateOps[State3[A, B, C]] {
	return StateOps[State3[A, B, C]]{
		Empty: func(ctx *Ctx) State3[A, B, C] {
			return State3[A, B, C]{a.Empty(ctx), b.Empty(ctx), c.Empty(ctx)}
		},
		Filter: func(s State3[A, B, C], keep engine.Dataset[Tag], sub *Ctx) State3[A, B, C] {
			return State3[A, B, C]{a.Filter(s.A, keep, sub), b.Filter(s.B, keep, sub), c.Filter(s.C, keep, sub)}
		},
		Union: func(x, y State3[A, B, C]) State3[A, B, C] {
			return State3[A, B, C]{a.Union(x.A, y.A), b.Union(x.B, y.B), c.Union(x.C, y.C)}
		},
		Cache: func(s State3[A, B, C]) State3[A, B, C] {
			return State3[A, B, C]{a.Cache(s.A), b.Cache(s.B), c.Cache(s.C)}
		},
	}
}

// State2Ops composes StateOps for a two-component state.
func State2Ops[A, B any](a StateOps[A], b StateOps[B]) StateOps[State2[A, B]] {
	return StateOps[State2[A, B]]{
		Empty: func(ctx *Ctx) State2[A, B] {
			return State2[A, B]{a.Empty(ctx), b.Empty(ctx)}
		},
		Filter: func(s State2[A, B], keep engine.Dataset[Tag], sub *Ctx) State2[A, B] {
			return State2[A, B]{a.Filter(s.A, keep, sub), b.Filter(s.B, keep, sub)}
		},
		Union: func(x, y State2[A, B]) State2[A, B] {
			return State2[A, B]{a.Union(x.A, y.A), b.Union(x.B, y.B)}
		},
		Cache: func(s State2[A, B]) State2[A, B] {
			return State2[A, B]{a.Cache(s.A), b.Cache(s.B)}
		},
	}
}
