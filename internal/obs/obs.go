// Package obs is the engine's event spine: structured per-job, per-stage
// and per-broadcast events with the counters the paper's runtime
// optimizations reason about (shuffle bytes, broadcast sizes, memo hits,
// simulated-clock deltas, task retries), plus the optimizer's decision log
// — each Sec. 8 choice recorded with the observed sizes that justified it.
//
// A Recorder is attached to an engine session (engine.Config.Obs); every
// method is safe on a nil receiver, so instrumented code paths pay one nil
// check when observation is off. The EXPLAIN ANALYZE renderer (Report)
// and the flat event stream (Trace) read the recorded events back.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Decision is one optimizer choice: which physical implementation a
// lowering-phase rule picked, and why.
type Decision struct {
	Rule   string // e.g. "partitions", "scalar-join", "bag-scalar-join", "half-lifted"
	Choice string // the picked implementation, e.g. "broadcast-left"
	Forced bool   // true when an Options override bypassed the rule
	Why    string // observed sizes that justified the choice
}

// Stage is the record of one executed stage.
type Stage struct {
	Stage        int     // plan stage id within its job
	Label        string  // stage root operator
	Chain        string  // pipelined operator chain
	Fused        string  // fused narrow chains run by the stage, e.g. "fused(map∘filter) ×2 ops"
	Parts        int     // task count
	ShuffleBytes float64 // real shuffle bytes read by the stage's tasks
	MemoHits     int64   // fan-in memo partitions served from cache
	Seconds      float64 // simulated-clock delta (stage overhead + makespan)
	BusySeconds  float64 // summed simulated task time
	Retries      int     // injected transient task failures
	MaxTaskSec   float64 // slowest simulated task
	MaxTaskMem   int64   // largest task memory claim

	// Stage-boundary batch observability: the encoded wire size of the
	// shuffle blocks the stage's tasks read (batchio frames, the distributed
	// backend's serialization) and the element shape of those batches
	// (e.g. "Pair[int,int]"; "any" for the boxed fallback, "" when the
	// stage read no shuffle input).
	BoundaryBytes int64
	BatchShape    string

	// Real-execution accounting. WallSeconds is the host wall-clock time
	// the stage's tasks actually took (recorded for every stage, simulated
	// or not — the simulated Seconds above is virtual time and differs by
	// design). The Remote fields are filled only when a process-pool
	// backend ran the stage in worker processes: the encoded bytes that
	// crossed process boundaries and the live-worker count that ran it.
	Remote        bool
	WallSeconds   float64
	RemoteBytes   int64
	RemoteWorkers int

	// Multi-tenant scheduler accounting (zero when the session runs
	// directly on the single-job simulator). QueueWait is virtual time the
	// stage spent waiting for slots held by other tenants; the Spec fields
	// count speculative straggler mitigation on this stage.
	QueueWait     float64
	SpecLaunched  int
	SpecWon       int
	SpecWastedSec float64
}

// Broadcast is the record of one pinned broadcast.
type Broadcast struct {
	Label   string
	Bytes   int64
	Seconds float64 // simulated-clock delta of the pin
}

// Recovery is the record of one adaptive-recovery action: a stage (or its
// broadcast) failed, and the engine re-lowered the offending subplan — or
// decided to rerun the stage — and resumed the job from its frontier.
type Recovery struct {
	Stage   int     // plan stage id of the failed stage
	Label   string  // stage root operator
	What    string  // failure flavor, e.g. "broadcast OOM (...)"
	Action  string  // e.g. "re-lowered(join=repartition)", "re-lowered(parts 200→800)", "rerun"
	Seconds float64 // virtual time charged to the failed attempt
}

// FaultEvent is one machine-failure transition applied by the simulated
// cluster's fault plan (internal/cluster chaos): a crash that destroyed
// the machine's resident shuffle outputs, or a rejoin that brought it
// back empty. Like scheduler events, fault events describe the cluster,
// not one job, so they live on their own stream.
type FaultEvent struct {
	At      float64 // virtual time the transition was applied
	Machine int
	Kind    string // "crash" or "rejoin"
	Detail  string // e.g. "lost 3 shuffle partitions"
}

// SchedEvent is one multi-tenant scheduler event: a stage queue wait, a
// speculative backup launched / won / wasted, or an admission rejection.
// Unlike the per-job records above, scheduler events are recorded on a
// session-independent stream: they describe the shared pool, not one
// session's job.
type SchedEvent struct {
	Tenant  string
	Job     int    // tenant-local job sequence
	Stage   int    // job-local stage sequence
	Kind    string // "queue-wait", "speculate", "spec-won", "spec-wasted", "admit-reject"
	Seconds float64
	Detail  string
}

// Job is the record of one engine job: the plan it ran and what happened.
type Job struct {
	ID         int
	Target     string // the materialized node, e.g. "#42 map"
	Plan       string // rendered physical plan (plan.Plan.String)
	Seconds    float64
	Stages     []Stage
	Broadcasts []Broadcast
	Recoveries []Recovery
	Err        string
}

// Recorder accumulates events. The zero value is unusable; construct with
// NewRecorder. A nil *Recorder is a valid no-op sink.
type Recorder struct {
	mu        sync.Mutex
	jobs      []Job
	cur       *Job
	decisions []Decision
	sched     []SchedEvent
	faults    []FaultEvent
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Enabled reports whether events are being recorded.
func (r *Recorder) Enabled() bool { return r != nil }

// StartJob opens a job record. Engine jobs are serialized per session, and
// the recorder's lock makes concurrent sessions safe (their job records
// interleave whole).
func (r *Recorder) StartJob(target, planStr string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cur = &Job{ID: len(r.jobs) + 1, Target: target, Plan: planStr}
}

// EndJob closes the current job record.
func (r *Recorder) EndJob(seconds float64, err error) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil {
		return
	}
	r.cur.Seconds = seconds
	if err != nil {
		r.cur.Err = err.Error()
	}
	r.jobs = append(r.jobs, *r.cur)
	r.cur = nil
}

// StageRan appends a stage record to the current job.
func (r *Recorder) StageRan(s Stage) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur != nil {
		r.cur.Stages = append(r.cur.Stages, s)
	}
}

// BroadcastPinned appends a broadcast record to the current job.
func (r *Recorder) BroadcastPinned(b Broadcast) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur != nil {
		r.cur.Broadcasts = append(r.cur.Broadcasts, b)
	}
}

// StageRecovered appends an adaptive-recovery record to the current job.
func (r *Recorder) StageRecovered(rec Recovery) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur != nil {
		r.cur.Recoveries = append(r.cur.Recoveries, rec)
	}
}

// Decide appends an optimizer decision to the log.
func (r *Recorder) Decide(d Decision) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.decisions = append(r.decisions, d)
}

// Sched appends a multi-tenant scheduler event.
func (r *Recorder) Sched(e SchedEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sched = append(r.sched, e)
}

// Fault appends a machine-failure event.
func (r *Recorder) Fault(e FaultEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.faults = append(r.faults, e)
}

// Faults returns the machine-failure event stream.
func (r *Recorder) Faults() []FaultEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]FaultEvent(nil), r.faults...)
}

// SchedEvents returns the scheduler event stream.
func (r *Recorder) SchedEvents() []SchedEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SchedEvent(nil), r.sched...)
}

// Jobs returns the completed job records.
func (r *Recorder) Jobs() []Job {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Job(nil), r.jobs...)
}

// PeakTaskMem returns the largest single-task memory claim recorded
// across all jobs and stages (including a still-open job) — the
// peak-resident-bytes figure the sec-shred experiment reports per
// nested-bag lowering.
func (r *Recorder) PeakTaskMem() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var peak int64
	scan := func(j *Job) {
		for _, s := range j.Stages {
			if s.MaxTaskMem > peak {
				peak = s.MaxTaskMem
			}
		}
	}
	for i := range r.jobs {
		scan(&r.jobs[i])
	}
	if r.cur != nil {
		scan(r.cur)
	}
	return peak
}

// Decisions returns the decision log.
func (r *Recorder) Decisions() []Decision {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Decision(nil), r.decisions...)
}

// Report renders the recorded run as a stage-level EXPLAIN ANALYZE:
// per job, the planned stages followed by what each stage actually cost
// on the simulated cluster, then the deduplicated optimizer decision log.
// Identical consecutive jobs (same target, same plan — iterative
// supersteps) are collapsed into one entry with a repeat count and summed
// clock time.
func (r *Recorder) Report() string {
	if r == nil {
		return ""
	}
	jobs := r.Jobs()
	decisions := r.Decisions()

	var b strings.Builder
	var clock, busy float64
	stages := 0
	for _, j := range jobs {
		clock += j.Seconds
		stages += len(j.Stages)
		for _, s := range j.Stages {
			busy += s.BusySeconds
		}
	}
	fmt.Fprintf(&b, "EXPLAIN ANALYZE: %d jobs, %d stages, clock %s, busy %s\n",
		len(jobs), stages, secs(clock), secs(busy))

	for i := 0; i < len(jobs); {
		j := jobs[i]
		run := 1
		total := j.Seconds
		for i+run < len(jobs) && sameShape(jobs[i+run], j) {
			total += jobs[i+run].Seconds
			run++
		}
		if run > 1 {
			fmt.Fprintf(&b, "\nJob %d..%d (x%d): %s  %s total\n", j.ID, j.ID+run-1, run, j.Target, secs(total))
		} else {
			fmt.Fprintf(&b, "\nJob %d: %s  %s\n", j.ID, j.Target, secs(j.Seconds))
		}
		for _, line := range strings.Split(strings.TrimRight(j.Plan, "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
		for _, s := range j.Stages {
			fmt.Fprintf(&b, "  Stage %d %-16s %s tasks=%d", s.Stage, s.Label, secs(s.Seconds), s.Parts)
			if s.ShuffleBytes > 0 {
				fmt.Fprintf(&b, " shuffle=%s", bytesStr(int64(s.ShuffleBytes)))
			}
			if s.BoundaryBytes > 0 {
				fmt.Fprintf(&b, " boundary=%s", bytesStr(s.BoundaryBytes))
				if s.BatchShape != "" {
					fmt.Fprintf(&b, "/%s", s.BatchShape)
				}
			}
			if s.MemoHits > 0 {
				fmt.Fprintf(&b, " memo-hits=%d", s.MemoHits)
			}
			if s.Retries > 0 {
				fmt.Fprintf(&b, " retries=%d", s.Retries)
			}
			if s.QueueWait > 0.005 {
				fmt.Fprintf(&b, " wait=%s", secs(s.QueueWait))
			}
			if s.SpecLaunched > 0 {
				fmt.Fprintf(&b, " spec=%d/%d won, %s wasted", s.SpecWon, s.SpecLaunched, secs(s.SpecWastedSec))
			}
			fmt.Fprintf(&b, " maxtask=%s", secs(s.MaxTaskSec))
			if s.Remote {
				fmt.Fprintf(&b, " remote[wall=%s", secs(s.WallSeconds))
				if s.RemoteBytes > 0 {
					fmt.Fprintf(&b, " shipped=%s", bytesStr(s.RemoteBytes))
				}
				fmt.Fprintf(&b, " workers=%d]", s.RemoteWorkers)
			}
			if s.Chain != s.Label {
				fmt.Fprintf(&b, " chain=%s", s.Chain)
			}
			if s.Fused != "" {
				fmt.Fprintf(&b, " %s", s.Fused)
			}
			b.WriteString("\n")
		}
		for _, bc := range j.Broadcasts {
			fmt.Fprintf(&b, "  Broadcast %-14s %s %s pinned cluster-wide\n", bc.Label, secs(bc.Seconds), bytesStr(bc.Bytes))
		}
		for _, rc := range j.Recoveries {
			outcome := "ok"
			if j.Err != "" {
				outcome = "failed"
			}
			fmt.Fprintf(&b, "  Recovery stage %d %s: %s → %s → %s (failed attempt cost %s)\n",
				rc.Stage, rc.Label, rc.What, rc.Action, outcome, secs(rc.Seconds))
		}
		if j.Err != "" {
			fmt.Fprintf(&b, "  ERROR: %s\n", j.Err)
		}
		i += run
	}

	if len(decisions) > 0 {
		b.WriteString("\nOptimizer decisions (Sec. 8):\n")
		for _, line := range dedupDecisions(decisions) {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}

	if faults := r.Faults(); len(faults) > 0 {
		// Count per kind, rendering the classic pair first (crash/rejoin,
		// the simulator's vocabulary) and any further kinds — the process
		// pool's respawn/quarantine/corrupt-block — in first-seen order.
		counts := map[string]int{}
		var extra []string
		for _, e := range faults {
			if e.Kind != "crash" && e.Kind != "rejoin" && counts[e.Kind] == 0 {
				extra = append(extra, e.Kind)
			}
			counts[e.Kind]++
		}
		fmt.Fprintf(&b, "\nFault events: %d crashes, %d rejoins", counts["crash"], counts["rejoin"])
		for _, kind := range extra {
			fmt.Fprintf(&b, ", %d %ss", counts[kind], kind)
		}
		b.WriteString("\n")
		for _, e := range faults {
			fmt.Fprintf(&b, "  [t=%s] machine %d %-6s %s\n", secs(e.At), e.Machine, e.Kind, e.Detail)
		}
	}

	if sched := r.SchedEvents(); len(sched) > 0 {
		b.WriteString("\nScheduler events:\n")
		var wait, wasted float64
		launched, won, rejected := 0, 0, 0
		for _, e := range sched {
			switch e.Kind {
			case "queue-wait":
				wait += e.Seconds
			case "speculate":
				launched++
			case "spec-won":
				won++
			case "spec-wasted":
				wasted += e.Seconds
			case "admit-reject":
				rejected++
			}
		}
		fmt.Fprintf(&b, "  queue wait %s across stages; %d backups launched, %d won, %s wasted; %d submissions rejected\n",
			secs(wait), launched, won, secs(wasted), rejected)
		for _, e := range sched {
			fmt.Fprintf(&b, "  [%s job %d stage %d] %-11s %s  %s\n", e.Tenant, e.Job, e.Stage, e.Kind, secs(e.Seconds), e.Detail)
		}
	}
	return b.String()
}

// BatchStats renders the stage-boundary batch statistics of the recorded
// run: for every stage that read shuffle input, the element shape of its
// batches, how many batches its tasks read (one block per task), and their
// total encoded wire size (batchio frames). Stages are aggregated across
// jobs and supersteps by (label, shape) in first-seen order.
func (r *Recorder) BatchStats() string {
	if r == nil {
		return ""
	}
	type statKey struct{ label, shape string }
	type stat struct {
		runs    int
		batches int
		bytes   int64
	}
	stats := map[statKey]*stat{}
	var order []statKey
	var total int64
	stages := 0
	for _, j := range r.Jobs() {
		for _, s := range j.Stages {
			if s.BoundaryBytes <= 0 {
				continue
			}
			stages++
			total += s.BoundaryBytes
			k := statKey{s.Label, s.BatchShape}
			a := stats[k]
			if a == nil {
				a = &stat{}
				stats[k] = a
				order = append(order, k)
			}
			a.runs++
			a.batches += s.Parts
			a.bytes += s.BoundaryBytes
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "BATCH STATS: %d boundary stages, %s encoded\n", stages, bytesStr(total))
	for _, k := range order {
		a := stats[k]
		fmt.Fprintf(&b, "  %-20s shape=%-28s stages=%-4d batches=%-6d bytes=%s\n",
			k.label, k.shape, a.runs, a.batches, bytesStr(a.bytes))
	}
	return b.String()
}

// Trace renders the raw event stream, one line per event, in order.
func (r *Recorder) Trace() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, j := range r.Jobs() {
		fmt.Fprintf(&b, "job %d start target=%s\n", j.ID, j.Target)
		for _, s := range j.Stages {
			fused := ""
			if s.Fused != "" {
				fused = " " + s.Fused
			}
			boundary := ""
			if s.BoundaryBytes > 0 {
				boundary = fmt.Sprintf(" boundary=%s shape=%s", bytesStr(s.BoundaryBytes), s.BatchShape)
			}
			remote := ""
			if s.Remote {
				remote = fmt.Sprintf(" remote=true wall=%s shipped=%s workers=%d",
					secs(s.WallSeconds), bytesStr(s.RemoteBytes), s.RemoteWorkers)
			}
			fmt.Fprintf(&b, "job %d stage %d label=%s parts=%d dt=%s busy=%s shuffle=%s memo-hits=%d retries=%d maxtask=%s maxmem=%s chain=%s%s%s%s\n",
				j.ID, s.Stage, s.Label, s.Parts, secs(s.Seconds), secs(s.BusySeconds),
				bytesStr(int64(s.ShuffleBytes)), s.MemoHits, s.Retries, secs(s.MaxTaskSec), bytesStr(s.MaxTaskMem), s.Chain, fused, boundary, remote)
		}
		for _, bc := range j.Broadcasts {
			fmt.Fprintf(&b, "job %d broadcast label=%s bytes=%s dt=%s\n", j.ID, bc.Label, bytesStr(bc.Bytes), secs(bc.Seconds))
		}
		for _, rc := range j.Recoveries {
			fmt.Fprintf(&b, "job %d recovery stage=%d label=%s what=%q action=%q charged=%s\n",
				j.ID, rc.Stage, rc.Label, rc.What, rc.Action, secs(rc.Seconds))
		}
		fmt.Fprintf(&b, "job %d end dt=%s err=%q\n", j.ID, secs(j.Seconds), j.Err)
	}
	for _, d := range r.Decisions() {
		forced := ""
		if d.Forced {
			forced = " forced"
		}
		fmt.Fprintf(&b, "decision rule=%s choice=%s%s why=%q\n", d.Rule, d.Choice, forced, d.Why)
	}
	for _, e := range r.Faults() {
		fmt.Fprintf(&b, "fault t=%s machine=%d kind=%s detail=%q\n",
			secs(e.At), e.Machine, e.Kind, e.Detail)
	}
	for _, e := range r.SchedEvents() {
		fmt.Fprintf(&b, "sched tenant=%s job=%d stage=%d kind=%s dt=%s detail=%q\n",
			e.Tenant, e.Job, e.Stage, e.Kind, secs(e.Seconds), e.Detail)
	}
	return b.String()
}

// sameShape reports whether two jobs ran the same plan against the same
// target (iterative supersteps repeat these exactly). Jobs that recovered
// are never collapsed — their recovery lines must stay visible.
func sameShape(a, b Job) bool {
	return a.Target == b.Target && a.Plan == b.Plan && a.Err == "" && b.Err == "" &&
		len(a.Recoveries) == 0 && len(b.Recoveries) == 0
}

// dedupDecisions groups identical decisions with a count, preserving
// first-occurrence order.
func dedupDecisions(ds []Decision) []string {
	counts := map[Decision]int{}
	var order []Decision
	for _, d := range ds {
		if counts[d] == 0 {
			order = append(order, d)
		}
		counts[d]++
	}
	var out []string
	for _, d := range order {
		forced := ""
		if d.Forced {
			forced = " (forced)"
		}
		line := fmt.Sprintf("[%s] %s%s — %s", d.Rule, d.Choice, forced, d.Why)
		if counts[d] > 1 {
			line += fmt.Sprintf("  (x%d)", counts[d])
		}
		out = append(out, line)
	}
	return out
}

// secs formats a simulated duration.
func secs(s float64) string { return fmt.Sprintf("%.2fs", s) }

// bytesStr formats a byte count with a binary unit suffix.
func bytesStr(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// SortedRules returns the distinct decision rules recorded, sorted — a
// convenience for tests asserting coverage of the Sec. 8 rules.
func (r *Recorder) SortedRules() []string {
	seen := map[string]bool{}
	var out []string
	for _, d := range r.Decisions() {
		if !seen[d.Rule] {
			seen[d.Rule] = true
			out = append(out, d.Rule)
		}
	}
	sort.Strings(out)
	return out
}
