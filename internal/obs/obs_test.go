package obs

import (
	"errors"
	"strings"
	"testing"
)

// record feeds a deterministic three-job run: one job with every counter
// populated, then two identical jobs (an iterative superstep shape).
func record() *Recorder {
	r := NewRecorder()
	r.StartJob("#5 count", "Stage 1 root=#5 count parts=4 chain=count<-map\n")
	r.StageRan(Stage{
		Stage: 1, Label: "count", Chain: "count<-map", Parts: 4,
		ShuffleBytes: 2048, MemoHits: 3, Seconds: 1.5, BusySeconds: 4,
		Retries: 1, MaxTaskSec: 0.5, MaxTaskMem: 1024,
	})
	r.BroadcastPinned(Broadcast{Label: "map", Bytes: 4096, Seconds: 0.25})
	r.EndJob(1.75, nil)
	for i := 0; i < 2; i++ {
		r.StartJob("#7 reduce", "Stage 1 root=#7 reduce parts=2\n")
		r.StageRan(Stage{Stage: 1, Label: "reduce", Chain: "reduce", Parts: 2,
			Seconds: 0.9, BusySeconds: 1, MaxTaskSec: 0.45})
		r.EndJob(1, nil)
	}
	r.Decide(Decision{Rule: "scalar-join", Choice: "broadcast-left", Why: "8 tags < parallelism 16"})
	r.Decide(Decision{Rule: "scalar-join", Choice: "broadcast-left", Why: "8 tags < parallelism 16"})
	r.Decide(Decision{Rule: "half-lifted", Choice: "bypass", Forced: true, Why: "Options override"})
	return r
}

func TestReportGolden(t *testing.T) {
	got := record().Report()
	want := strings.Join([]string{
		"EXPLAIN ANALYZE: 3 jobs, 3 stages, clock 3.75s, busy 6.00s",
		"",
		"Job 1: #5 count  1.75s",
		"  Stage 1 root=#5 count parts=4 chain=count<-map",
		"  Stage 1 count            1.50s tasks=4 shuffle=2.0KB memo-hits=3 retries=1 maxtask=0.50s chain=count<-map",
		"  Broadcast map            0.25s 4.0KB pinned cluster-wide",
		"",
		"Job 2..3 (x2): #7 reduce  2.00s total",
		"  Stage 1 root=#7 reduce parts=2",
		"  Stage 1 reduce           0.90s tasks=2 maxtask=0.45s",
		"",
		"Optimizer decisions (Sec. 8):",
		"  [scalar-join] broadcast-left — 8 tags < parallelism 16  (x2)",
		"  [half-lifted] bypass (forced) — Options override",
	}, "\n") + "\n"
	if got != want {
		t.Errorf("Report():\n%s\nwant:\n%s", got, want)
	}
}

func TestTraceGolden(t *testing.T) {
	got := record().Trace()
	want := strings.Join([]string{
		"job 1 start target=#5 count",
		"job 1 stage 1 label=count parts=4 dt=1.50s busy=4.00s shuffle=2.0KB memo-hits=3 retries=1 maxtask=0.50s maxmem=1.0KB chain=count<-map",
		"job 1 broadcast label=map bytes=4.0KB dt=0.25s",
		`job 1 end dt=1.75s err=""`,
		"job 2 start target=#7 reduce",
		"job 2 stage 1 label=reduce parts=2 dt=0.90s busy=1.00s shuffle=0B memo-hits=0 retries=0 maxtask=0.45s maxmem=0B chain=reduce",
		`job 2 end dt=1.00s err=""`,
		"job 3 start target=#7 reduce",
		"job 3 stage 1 label=reduce parts=2 dt=0.90s busy=1.00s shuffle=0B memo-hits=0 retries=0 maxtask=0.45s maxmem=0B chain=reduce",
		`job 3 end dt=1.00s err=""`,
		"decision rule=scalar-join choice=broadcast-left why=\"8 tags < parallelism 16\"",
		"decision rule=scalar-join choice=broadcast-left why=\"8 tags < parallelism 16\"",
		"decision rule=half-lifted choice=bypass forced why=\"Options override\"",
	}, "\n") + "\n"
	if got != want {
		t.Errorf("Trace():\n%s\nwant:\n%s", got, want)
	}
}

func TestFailedJobsDoNotCollapse(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 2; i++ {
		r.StartJob("#9 collect", "Stage 1 root=#9 collect parts=1\n")
		r.EndJob(0.5, errors.New("simulated OOM"))
	}
	rep := r.Report()
	if strings.Contains(rep, "(x2)") {
		t.Error("failed jobs were collapsed; each failure should stay visible")
	}
	if strings.Count(rep, "ERROR: simulated OOM") != 2 {
		t.Errorf("want 2 ERROR lines, report:\n%s", rep)
	}
}

func TestSortedRules(t *testing.T) {
	r := record()
	got := r.SortedRules()
	want := []string{"half-lifted", "scalar-join"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("SortedRules() = %v, want %v", got, want)
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports Enabled")
	}
	// None of these may panic.
	r.StartJob("x", "y")
	r.StageRan(Stage{})
	r.BroadcastPinned(Broadcast{})
	r.Decide(Decision{})
	r.EndJob(0, nil)
	if r.Report() != "" || r.Trace() != "" || r.Jobs() != nil || r.Decisions() != nil {
		t.Error("nil recorder produced output")
	}
	if rules := r.SortedRules(); len(rules) != 0 {
		t.Errorf("nil recorder rules = %v", rules)
	}
}

func TestEventsOutsideJobAreDropped(t *testing.T) {
	r := NewRecorder()
	r.StageRan(Stage{Label: "orphan"}) // no open job
	r.EndJob(1, nil)                   // no open job
	r.StartJob("#1 count", "plan\n")
	r.EndJob(0.5, nil)
	jobs := r.Jobs()
	if len(jobs) != 1 || len(jobs[0].Stages) != 0 {
		t.Errorf("jobs = %+v", jobs)
	}
}

// TestRecoveryRendering: recovery events appear in both Report and Trace,
// with the outcome taken from how the job ended, and a recovered job is
// never collapsed into an iterative run.
func TestRecoveryRendering(t *testing.T) {
	r := NewRecorder()
	r.StartJob("#9 collect", "Stage 1 root=#9 collect parts=4\n")
	r.StageRecovered(Recovery{
		Stage: 1, Label: "broadcastJoin",
		What:   "broadcast OOM (9000 bytes over a 4096-byte budget)",
		Action: "re-lowered(join=repartition)",
	})
	r.StageRecovered(Recovery{
		Stage: 2, Label: "groupByKey",
		What:   "task OOM (wave 2, machine 1: 9000 bytes over a 4096-byte budget)",
		Action: "re-lowered(parts 200→800)", Seconds: 1.25,
	})
	r.EndJob(3, nil)
	// An identical-looking job without recoveries: must not collapse.
	r.StartJob("#9 collect", "Stage 1 root=#9 collect parts=4\n")
	r.EndJob(3, nil)

	rep := r.Report()
	okLine := "  Recovery stage 1 broadcastJoin: broadcast OOM (9000 bytes over a 4096-byte budget) → re-lowered(join=repartition) → ok (failed attempt cost 0.00s)\n"
	if !strings.Contains(rep, okLine) {
		t.Errorf("report missing recovery line:\n%s", rep)
	}
	if !strings.Contains(rep, "re-lowered(parts 200→800) → ok (failed attempt cost 1.25s)") {
		t.Errorf("report missing parts recovery:\n%s", rep)
	}
	if strings.Contains(rep, "(x2)") {
		t.Errorf("recovered job collapsed with a clean one:\n%s", rep)
	}
	if !strings.Contains(r.Trace(), `job 1 recovery stage=2 label=groupByKey what="task OOM (wave 2, machine 1: 9000 bytes over a 4096-byte budget)" action="re-lowered(parts 200→800)" charged=1.25s`) {
		t.Errorf("trace missing recovery line:\n%s", r.Trace())
	}

	// A failed job renders the same recovery with outcome "failed".
	r2 := NewRecorder()
	r2.StartJob("#9 collect", "plan\n")
	r2.StageRecovered(Recovery{Stage: 1, Label: "groupByKey", What: "task OOM", Action: "re-lowered(parts 4→32)"})
	r2.EndJob(1, errors.New("still OOM"))
	if !strings.Contains(r2.Report(), "task OOM → re-lowered(parts 4→32) → failed") {
		t.Errorf("failed outcome not rendered:\n%s", r2.Report())
	}
}
