package main

import (
	"regexp"
	"strings"
	"testing"
)

func TestParseBenchText(t *testing.T) {
	text := `goos: linux
goarch: amd64
pkg: matryoshka/internal/engine
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkShuffleRoute/uniform/serial-4         	     374	   3081601 ns/op	 3840128 B/op	     241 allocs/op
BenchmarkStageExec/fused                       	      20	   2546158 ns/op	 3564153 B/op	     933 allocs/op
PASS
ok  	matryoshka/internal/engine	12.3s
`
	rep, err := parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Pkg != "matryoshka/internal/engine" {
		t.Errorf("header parsed wrong: %+v", rep)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(rep.Results))
	}
	if r := rep.Results[0]; r.Name != "BenchmarkShuffleRoute/uniform/serial" || r.Procs != 4 ||
		r.NsPerOp != 3081601 || r.AllocsPerOp != 241 {
		t.Errorf("first result parsed wrong: %+v", r)
	}
	if r := rep.Results[1]; r.Name != "BenchmarkStageExec/fused" || r.Procs != 1 {
		t.Errorf("procs-less name parsed wrong: %+v", r)
	}
}

func res(name string, ns float64) Result { return Result{Name: name, NsPerOp: ns} }

func TestCheckPassesWithinFactor(t *testing.T) {
	base := Report{Results: []Result{res("A", 1000), res("B", 2000)}}
	cur := Report{Results: []Result{res("A", 1900), res("B", 2000)}}
	out, ok := check(base, cur, 2, nil)
	if !ok {
		t.Fatalf("within-factor run failed:\n%s", out)
	}
	if !strings.Contains(out, "within 2.0x") {
		t.Errorf("summary missing verdict:\n%s", out)
	}
}

func TestCheckFailsOnRegression(t *testing.T) {
	base := Report{Results: []Result{res("A", 1000)}}
	cur := Report{Results: []Result{res("A", 2500)}}
	out, ok := check(base, cur, 2, nil)
	if ok {
		t.Fatalf("2.5x regression passed:\n%s", out)
	}
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "A") {
		t.Errorf("report does not name the regressed benchmark:\n%s", out)
	}
}

func TestCheckIgnoresNewAndGoneBenchmarks(t *testing.T) {
	base := Report{Results: []Result{res("A", 1000), res("Old", 500)}}
	cur := Report{Results: []Result{res("A", 1000), res("New", 99999999)}}
	out, ok := check(base, cur, 2, nil)
	if !ok {
		t.Fatalf("new/gone benchmarks must not fail the gate:\n%s", out)
	}
	if !strings.Contains(out, "new") || !strings.Contains(out, "gone") {
		t.Errorf("report does not mention new/gone benchmarks:\n%s", out)
	}
}

func TestCheckZeroBaselineNeverDividesByZero(t *testing.T) {
	base := Report{Results: []Result{res("A", 0)}}
	cur := Report{Results: []Result{res("A", 12345)}}
	if _, ok := check(base, cur, 2, nil); !ok {
		t.Fatal("zero baseline should not count as a regression")
	}
}

func resAllocs(name string, ns float64, allocs int64) Result {
	return Result{Name: name, NsPerOp: ns, AllocsPerOp: allocs}
}

func TestCheckGatesAllocsOnMatchingBenchmarks(t *testing.T) {
	re := regexp.MustCompile("ShuffleBoundary")
	base := Report{Results: []Result{
		resAllocs("BenchmarkShuffleBoundary/typed", 1000, 48),
		resAllocs("BenchmarkOther", 1000, 10),
	}}

	// Same allocs passes; ns/op noise within factor is still tolerated.
	cur := Report{Results: []Result{
		resAllocs("BenchmarkShuffleBoundary/typed", 1500, 48),
		resAllocs("BenchmarkOther", 1000, 500), // unmatched: allocs ignored
	}}
	if out, ok := check(base, cur, 2, re); !ok {
		t.Fatalf("stable allocs failed the gate:\n%s", out)
	}

	// One extra alloc on a gated benchmark fails, even with ns/op fine.
	cur = Report{Results: []Result{
		resAllocs("BenchmarkShuffleBoundary/typed", 1000, 49),
		resAllocs("BenchmarkOther", 1000, 10),
	}}
	out, ok := check(base, cur, 2, re)
	if ok {
		t.Fatalf("allocs growth passed the gate:\n%s", out)
	}
	if !strings.Contains(out, "allocs/op (grew)") {
		t.Errorf("report does not call out the allocs growth:\n%s", out)
	}

	// Fewer allocs (an improvement) passes.
	cur = Report{Results: []Result{
		resAllocs("BenchmarkShuffleBoundary/typed", 1000, 12),
		resAllocs("BenchmarkOther", 1000, 10),
	}}
	if out, ok := check(base, cur, 2, re); !ok {
		t.Fatalf("allocs improvement failed the gate:\n%s", out)
	}
}
