// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, so benchmark results can be committed and
// diffed across revisions (see BENCH_engine.json and `make bench`).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line, e.g.
// BenchmarkShuffleRoute/uniform/serial-4  100  1234 ns/op  56 B/op  7 allocs/op
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"` // GOMAXPROCS suffix of the name
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the full document: environment header lines plus results.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}

func parseBench(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Result{}, false
	}
	var r Result
	r.Name = f[0]
	r.Procs = 1 // `go test` omits the -N name suffix when GOMAXPROCS is 1
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = p
			r.Name = r.Name[:i]
		}
	}
	var err error
	if r.Iterations, err = strconv.ParseInt(f[1], 10, 64); err != nil {
		return Result{}, false
	}
	if r.NsPerOp, err = strconv.ParseFloat(f[2], 64); err != nil {
		return Result{}, false
	}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseInt(f[i], 10, 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, true
}
