// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, so benchmark results can be committed and
// diffed across revisions (see BENCH_engine.json and `make bench`).
//
// With -check it becomes a regression gate instead: the current run (still
// text on stdin) is compared against a committed baseline JSON, and any
// benchmark whose ns/op grew by more than -factor fails the command (see
// `make bench-check` and the CI bench-smoke job). Benchmarks matching
// -gate-allocs additionally gate allocs/op: allocation counts are
// deterministic (unlike ns/op on a shared CI box), so the stage-boundary
// benchmarks use this to pin the typed data path's allocation win down.
//
//	go test -bench . ./internal/engine | benchjson > BENCH_engine.json
//	go test -bench . ./internal/engine | benchjson -check BENCH_engine.json -factor 2 -gate-allocs ShuffleBoundary
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line, e.g.
// BenchmarkShuffleRoute/uniform/serial-4  100  1234 ns/op  56 B/op  7 allocs/op
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"` // GOMAXPROCS suffix of the name
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the full document: environment header lines plus results.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	var (
		checkPath  = flag.String("check", "", "baseline JSON to compare stdin against; regressions fail the command")
		factor     = flag.Float64("factor", 2, "with -check: fail when current ns/op exceeds baseline by more than this factor")
		gateAllocs = flag.String("gate-allocs", "", "with -check: regexp of benchmark names whose allocs/op must not exceed baseline")
	)
	flag.Parse()
	if *factor <= 0 {
		fmt.Fprintln(os.Stderr, "benchjson: -factor must be positive")
		os.Exit(2)
	}
	var allocsRe *regexp.Regexp
	if *gateAllocs != "" {
		var err error
		if allocsRe, err = regexp.Compile(*gateAllocs); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -gate-allocs:", err)
			os.Exit(2)
		}
	}

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	if *checkPath != "" {
		raw, err := os.ReadFile(*checkPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var base Report
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *checkPath, err)
			os.Exit(1)
		}
		summary, ok := check(base, rep, *factor, allocsRe)
		fmt.Print(summary)
		if !ok {
			os.Exit(1)
		}
		return
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` text output into a Report.
func parse(r io.Reader) (Report, error) {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	return rep, sc.Err()
}

// check compares the current run against a baseline by benchmark name.
// Benchmarks missing from the baseline (newly added) or from the current
// run (renamed/removed) are reported but never fail the gate: the gate
// exists to catch regressions on retained benchmarks, and a shared-CI box
// is noisy, so only a > factor ns/op growth is treated as one. Benchmarks
// matching allocsRe also fail when allocs/op grows past the baseline —
// allocation counts are deterministic, so any growth is a real change.
func check(base, cur Report, factor float64, allocsRe *regexp.Regexp) (string, bool) {
	baseline := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r
	}
	var b strings.Builder
	ok := true
	for _, r := range cur.Results {
		bl, found := baseline[r.Name]
		if !found {
			fmt.Fprintf(&b, "  new      %-56s %12.0f ns/op (no baseline)\n", r.Name, r.NsPerOp)
			continue
		}
		ratio := 0.0
		if bl.NsPerOp > 0 {
			ratio = r.NsPerOp / bl.NsPerOp
		}
		verdict := "ok"
		if ratio > factor {
			verdict = "REGRESSED"
			ok = false
		}
		allocs := ""
		if allocsRe != nil && allocsRe.MatchString(r.Name) && bl.AllocsPerOp > 0 {
			allocs = fmt.Sprintf("  %d vs %d allocs/op", r.AllocsPerOp, bl.AllocsPerOp)
			if r.AllocsPerOp > bl.AllocsPerOp {
				verdict = "REGRESSED"
				ok = false
				allocs += " (grew)"
			}
		}
		fmt.Fprintf(&b, "  %-8s %-56s %12.0f ns/op vs %12.0f baseline (%.2fx)%s\n",
			verdict, r.Name, r.NsPerOp, bl.NsPerOp, ratio, allocs)
		delete(baseline, r.Name)
	}
	for name := range baseline {
		fmt.Fprintf(&b, "  gone     %s (in baseline, not in this run)\n", name)
	}
	if ok {
		fmt.Fprintf(&b, "benchjson: %d benchmarks within %.1fx of baseline\n", len(cur.Results), factor)
	} else {
		fmt.Fprintf(&b, "benchjson: ns/op regression beyond %.1fx of baseline\n", factor)
	}
	return b.String(), ok
}

func parseBench(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Result{}, false
	}
	var r Result
	r.Name = f[0]
	r.Procs = 1 // `go test` omits the -N name suffix when GOMAXPROCS is 1
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = p
			r.Name = r.Name[:i]
		}
	}
	var err error
	if r.Iterations, err = strconv.ParseInt(f[1], 10, 64); err != nil {
		return Result{}, false
	}
	if r.NsPerOp, err = strconv.ParseFloat(f[2], 64); err != nil {
		return Result{}, false
	}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseInt(f[i], 10, 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, true
}
