// Command matbench regenerates the paper's evaluation figures on the
// simulated cluster and prints each as a text table.
//
// Usage:
//
//	matbench                 # run every experiment at the default scale
//	matbench -exp fig3-kmeans
//	matbench -list
//	matbench -records-per-gb 2000   # smaller/faster sweep
//	matbench -csv rows.csv          # raw rows for external plotting
//	matbench -explain bounce-rate   # EXPLAIN ANALYZE one task's Matryoshka run
//	matbench -trace bounce-rate     # raw job/stage/decision event stream
//	matbench -batchstats bounce-rate # per-stage batch shape/count/encoded wire bytes
//	matbench -explain recovery -mem 2147483648   # watch adaptive recovery re-lower OOMs
//	matbench -explain bounce-rate -faultrate 0.2 # task retries + rerun recoveries
//	matbench -explain chaos                      # machine crashes + lineage recomputation
//	matbench -exp sec9-chaos -seed 7             # crash-rate sweep under a different hazard seed
//	matbench -exp fig3-kmeans -mtbf 200          # any experiment under a machine-crash hazard
//	matbench -backend proc -procchaos        # self-healing soak: 20 jobs under seeded worker kills
//	matbench -tenants 3 -policy fair -speculate -straggle 0.25
//	                                 # one multi-tenant scheduling run (p50/p99/makespan)
//	matbench -exp fig1 -cpuprofile cpu.out -memprofile mem.out
//	                                 # profile the host engine under a real workload
//	matbench -exp fig1 -nofuse       # wall-clock A/B against the unfused executor
//	matbench -exp sec-shred -skew 1.5            # nested-bag lowerings under a chosen Zipf exponent
//	matbench -exp fig7-bounce -shred on          # force the shredded group materialization
//	matbench -explain shred                      # watch the shred rule pick a lowering from observed sizes
//
// Reported times are simulated cluster seconds (see internal/cluster);
// absolute values depend on the scale, the relative shapes are the result.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"matryoshka/internal/bench"
	"matryoshka/internal/procpool"
	"matryoshka/internal/sched"
	"matryoshka/internal/tasks"
)

// knobs carries every validated flag value.
type knobs struct {
	mem        int64
	faultRate  float64
	straggle   float64
	chaos      float64
	mtbf       float64
	seed       int64
	tenants    int
	policy     string
	cpuProfile string
	memProfile string
	explain    string
	trace      string
	batchStats string
	backend    string
	workers    int
	procChaos  bool
	nofuse     bool
	skew       float64
	shred      string
}

// validateFlags rejects out-of-domain knob values before any experiment
// runs, so a typo fails with a usage error instead of a misleading
// sweep (a fault rate of 1.2 would silently clamp deep inside the
// simulator; negative memory would "fit" nothing and OOM everything).
func validateFlags(k knobs) error {
	if k.faultRate < 0 || k.faultRate > 1 {
		return fmt.Errorf("-faultrate %v is not a probability (want 0..1)", k.faultRate)
	}
	if k.mem < 0 {
		return fmt.Errorf("-mem %d is negative (want bytes per machine, 0 = paper default)", k.mem)
	}
	if k.straggle < 0 || k.straggle > 1 {
		return fmt.Errorf("-straggle %v is not a rate (want 0..1)", k.straggle)
	}
	if k.chaos < 0 {
		return fmt.Errorf("-chaos %v is negative (want crashes per machine per 1000 simulated seconds, 0 = off)", k.chaos)
	}
	if k.mtbf < 0 {
		return fmt.Errorf("-mtbf %v is negative (want mean seconds between crashes per machine, 0 = off)", k.mtbf)
	}
	if k.chaos > 0 && k.mtbf > 0 {
		return fmt.Errorf("-chaos and -mtbf both set; they are two spellings of the same hazard, pick one")
	}
	if k.seed < 0 {
		return fmt.Errorf("-seed %d is negative (want a non-negative hazard/skew seed, 0 = default)", k.seed)
	}
	if k.tenants < 0 {
		return fmt.Errorf("-tenants %d is negative", k.tenants)
	}
	if k.policy != string(sched.PolicyFIFO) && k.policy != string(sched.PolicyFair) {
		return fmt.Errorf("-policy %q is unknown (want fifo or fair)", k.policy)
	}
	if k.cpuProfile != "" && k.cpuProfile == k.memProfile {
		return fmt.Errorf("-cpuprofile and -memprofile both write %q; the second would truncate the first", k.cpuProfile)
	}
	if k.batchStats != "" && (k.explain != "" || k.trace != "") {
		return fmt.Errorf("-batchstats runs its own instrumented pass; drop -explain/-trace or run them separately")
	}
	if k.skew != 0 && k.skew <= 1 {
		return fmt.Errorf("-skew %v is not a valid Zipf exponent (want > 1, 0 = each generator's default)", k.skew)
	}
	switch k.shred {
	case "", "auto", "on", "off":
	default:
		return fmt.Errorf("-shred %q is unknown (want auto, on, or off)", k.shred)
	}
	if k.backend != "sim" && k.backend != "proc" {
		return fmt.Errorf("-backend %q is unknown (want sim or proc)", k.backend)
	}
	if k.workers < 0 {
		return fmt.Errorf("-workers %d is negative (want worker process count, 0 = default)", k.workers)
	}
	if k.workers > 0 && k.backend != "proc" {
		return fmt.Errorf("-workers applies to the process pool; add -backend proc")
	}
	if k.procChaos && k.backend != "proc" {
		return fmt.Errorf("-procchaos soaks the process pool; add -backend proc")
	}
	if k.backend == "proc" {
		switch {
		case k.explain != "" || k.trace != "" || k.batchStats != "":
			return fmt.Errorf("-backend proc runs the sim-vs-proc A/B comparison; -explain/-trace/-batchstats are simulator views, run them separately")
		case k.tenants > 0:
			return fmt.Errorf("-backend proc and -tenants are exclusive: the multi-tenant scheduler is a simulator backend of its own")
		case k.nofuse:
			return fmt.Errorf("-backend proc ignores -nofuse (remote stages always run unfused); drop it")
		}
	}
	return nil
}

func main() {
	// A pool worker is this same binary re-exec'd; divert before flags,
	// tests, or any output.
	if procpool.IsWorker() {
		procpool.WorkerMain()
	}
	os.Exit(run())
}

// run is main with explicit exit codes: every early exit is a return, so
// the deferred profile writers always flush (an os.Exit inside would
// silently produce empty or truncated profile files).
func run() int {
	var (
		expID      = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		perGB      = flag.Int("records-per-gb", bench.DefaultScale().RecordsPerGB, "simulated records per paper-GB (smaller = faster)")
		quiet      = flag.Bool("q", false, "suppress progress output")
		csvPath    = flag.String("csv", "", "also write raw rows as CSV to this file")
		explain    = flag.String("explain", "", "EXPLAIN ANALYZE one task's Matryoshka run (bounce-rate, pagerank, k-means, avg-distances, recovery, chaos, shred)")
		trace      = flag.String("trace", "", "print the raw job/stage/decision event stream of one task's Matryoshka run")
		batchStats = flag.String("batchstats", "", "print per-stage batch shape, batch count, and encoded boundary bytes of one task's Matryoshka run")
		mem        = flag.Int64("mem", 0, "override per-machine memory in bytes (creates the pressure adaptive recovery reacts to)")
		faultRate  = flag.Float64("faultrate", 0, "inject transient task failures with this probability per task")
		tenants    = flag.Int("tenants", 0, "run one multi-tenant scheduling workload with this many interactive tenants (plus a batch tenant)")
		policy     = flag.String("policy", "fair", "scheduling policy for -tenants: fifo or fair")
		speculate  = flag.Bool("speculate", false, "enable speculative straggler re-execution for -tenants")
		straggle   = flag.Float64("straggle", 0.25, "straggler rate for -tenants: fraction of tasks stretched 8x")
		chaos      = flag.Float64("chaos", 0, "machine crash rate: crashes per machine per 1000 simulated seconds (0 = off)")
		mtbf       = flag.Float64("mtbf", 0, "machine crash hazard: mean simulated seconds between crashes per machine (alternative spelling of -chaos)")
		seed       = flag.Int64("seed", 0, "seed for the crash hazard and straggler skew (0 = default, runs stay bit-reproducible)")
		nofuse     = flag.Bool("nofuse", false, "disable fused narrow-chain execution (A/B wall-clock comparison; simulated numbers are identical either way)")
		skew       = flag.Float64("skew", 0, "override the Zipf exponent of skewed datasets (> 1; 0 = each generator's default)")
		shred      = flag.String("shred", "auto", "nested-bag materialization lowering: auto (optimizer picks per group-by), on (force shredded), off (force materialized)")
		backend    = flag.String("backend", "sim", "execution backend: sim (per-run simulator) or proc (run the sim-vs-process-pool A/B comparison)")
		workers    = flag.Int("workers", 0, "worker process count for -backend proc (0 = min(4, NumCPU))")
		procChaos  = flag.Bool("procchaos", false, "with -backend proc: run the self-healing soak (seeded worker kills; respawn-on must match the reference, respawn-off must abort)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()
	if err := validateFlags(knobs{mem: *mem, faultRate: *faultRate, straggle: *straggle,
		chaos: *chaos, mtbf: *mtbf, seed: *seed, tenants: *tenants, policy: *policy,
		cpuProfile: *cpuProfile, memProfile: *memProfile,
		explain: *explain, trace: *trace, batchStats: *batchStats,
		backend: *backend, workers: *workers, procChaos: *procChaos, nofuse: *nofuse,
		skew: *skew, shred: *shred}); err != nil {
		fmt.Fprintf(os.Stderr, "matbench: %v\n", err)
		flag.Usage()
		return 2
	}
	tasks.NoFuse = *nofuse
	if *shred != "" {
		tasks.Shred = *shred
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "matbench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "matbench: cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "matbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "matbench: memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return 0
	}
	sc := bench.Scale{RecordsPerGB: *perGB, MemoryPerMachine: *mem, FaultRate: *faultRate, Seed: uint64(*seed), Skew: *skew}
	switch {
	case *chaos > 0:
		sc.MTBF = 1000 / *chaos
	case *mtbf > 0:
		sc.MTBF = *mtbf
	}

	if *backend == "proc" {
		runProc := bench.ProcAB
		if *procChaos {
			runProc = bench.ProcChaos
		}
		out, err := runProc(sc, *workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "matbench: %v\n", err)
			return 1
		}
		fmt.Print(out)
		return 0
	}

	if *tenants > 0 {
		out, err := bench.SchedSummary(sc, *tenants, *straggle, sched.Policy(*policy), *speculate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "matbench: %v\n", err)
			return 1
		}
		fmt.Print(out)
		return 0
	}

	if *explain != "" || *trace != "" {
		task, asTrace := *explain, false
		if *trace != "" {
			task, asTrace = *trace, true
		}
		out, err := bench.ExplainRun(task, sc, asTrace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "matbench: %v\n", err)
			return 1
		}
		fmt.Print(out)
		return 0
	}

	if *batchStats != "" {
		out, err := bench.BatchStatsRun(*batchStats, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "matbench: %v\n", err)
			return 1
		}
		fmt.Print(out)
		return 0
	}

	var exps []bench.Experiment
	if *expID == "all" {
		exps = bench.Registry()
	} else {
		e, ok := bench.Find(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "matbench: unknown experiment %q (try -list)\n", *expID)
			return 2
		}
		exps = []bench.Experiment{e}
	}

	var csvW *csvWriter
	if *csvPath != "" {
		w, err := newCSVWriter(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "matbench: %v\n", err)
			return 1
		}
		defer w.Close()
		csvW = w
	}
	for _, e := range exps {
		start := time.Now()
		rows := e.Run(sc)
		fmt.Println(bench.Table(e, rows))
		if csvW != nil {
			if err := csvW.writeRows(rows); err != nil {
				fmt.Fprintf(os.Stderr, "matbench: csv: %v\n", err)
				return 1
			}
		}
		if !*quiet {
			fmt.Printf("  [%s: %d rows in %.1fs wall]\n\n", e.ID, len(rows), time.Since(start).Seconds())
		}
	}
	return 0
}

// csvWriter appends experiment rows to a CSV file for external plotting.
type csvWriter struct {
	f *os.File
	w *csv.Writer
}

func newCSVWriter(path string) (*csvWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"experiment", "series", "x", "seconds", "jobs", "oom", "err"}); err != nil {
		f.Close()
		return nil, err
	}
	return &csvWriter{f: f, w: w}, nil
}

func (c *csvWriter) writeRows(rows []bench.Row) error {
	for _, r := range rows {
		rec := []string{
			r.Exp, r.Series,
			strconv.FormatFloat(r.X, 'g', -1, 64),
			strconv.FormatFloat(r.Seconds, 'f', 3, 64),
			strconv.Itoa(r.Jobs),
			strconv.FormatBool(r.OOM),
			r.Err,
		}
		if err := c.w.Write(rec); err != nil {
			return err
		}
	}
	c.w.Flush()
	return c.w.Error()
}

func (c *csvWriter) Close() error {
	c.w.Flush()
	return c.f.Close()
}
