package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		k       knobs
		wantErr string // "" = valid
	}{
		{name: "defaults", k: knobs{backend: "sim", straggle: 0.25, policy: "fair"}},
		{name: "fifo policy", k: knobs{backend: "sim", tenants: 4, policy: "fifo"}},
		{name: "boundary rates", k: knobs{backend: "sim", faultRate: 1, straggle: 1, policy: "fair"}},
		{name: "chaos rate", k: knobs{backend: "sim", chaos: 4, seed: 7, policy: "fair"}},
		{name: "mtbf hazard", k: knobs{backend: "sim", mtbf: 250, policy: "fair"}},
		{name: "profiles to distinct files", k: knobs{backend: "sim", policy: "fair", cpuProfile: "cpu.out", memProfile: "mem.out"}},
		{name: "cpu profile alone", k: knobs{backend: "sim", policy: "fair", cpuProfile: "cpu.out"}},
		{name: "mem profile alone", k: knobs{backend: "sim", policy: "fair", memProfile: "mem.out"}},
		{name: "faultrate above 1", k: knobs{faultRate: 1.2, policy: "fair"}, wantErr: "-faultrate"},
		{name: "faultrate negative", k: knobs{faultRate: -0.1, policy: "fair"}, wantErr: "-faultrate"},
		{name: "mem negative", k: knobs{mem: -1, policy: "fair"}, wantErr: "-mem"},
		{name: "straggle above 1", k: knobs{straggle: 1.5, policy: "fair"}, wantErr: "-straggle"},
		{name: "chaos negative", k: knobs{chaos: -2, policy: "fair"}, wantErr: "-chaos"},
		{name: "mtbf negative", k: knobs{mtbf: -50, policy: "fair"}, wantErr: "-mtbf"},
		{name: "chaos and mtbf both set", k: knobs{chaos: 2, mtbf: 500, policy: "fair"}, wantErr: "-chaos and -mtbf"},
		{name: "seed negative", k: knobs{seed: -3, policy: "fair"}, wantErr: "-seed"},
		{name: "tenants negative", k: knobs{tenants: -2, policy: "fair"}, wantErr: "-tenants"},
		{name: "unknown policy", k: knobs{policy: "lottery"}, wantErr: "-policy"},
		{name: "profiles collide", k: knobs{policy: "fair", cpuProfile: "prof.out", memProfile: "prof.out"}, wantErr: "-cpuprofile and -memprofile"},
		{name: "batchstats alone", k: knobs{backend: "sim", policy: "fair", batchStats: "bounce-rate"}},
		{name: "batchstats with explain", k: knobs{policy: "fair", batchStats: "bounce-rate", explain: "bounce-rate"}, wantErr: "-batchstats"},
		{name: "batchstats with trace", k: knobs{policy: "fair", batchStats: "bounce-rate", trace: "pagerank"}, wantErr: "-batchstats"},
		{name: "proc backend", k: knobs{backend: "proc", policy: "fair"}},
		{name: "proc backend with workers", k: knobs{backend: "proc", workers: 2, policy: "fair"}},
		{name: "proc chaos soak", k: knobs{backend: "proc", procChaos: true, policy: "fair"}},
		{name: "procchaos without proc", k: knobs{backend: "sim", procChaos: true, policy: "fair"}, wantErr: "-procchaos"},
		{name: "unknown backend", k: knobs{backend: "spark", policy: "fair"}, wantErr: "-backend"},
		{name: "empty backend", k: knobs{policy: "fair"}, wantErr: "-backend"},
		{name: "workers negative", k: knobs{backend: "proc", workers: -1, policy: "fair"}, wantErr: "-workers"},
		{name: "workers without proc", k: knobs{backend: "sim", workers: 2, policy: "fair"}, wantErr: "-workers"},
		{name: "proc with explain", k: knobs{backend: "proc", explain: "chaos", policy: "fair"}, wantErr: "-backend proc"},
		{name: "proc with trace", k: knobs{backend: "proc", trace: "chaos", policy: "fair"}, wantErr: "-backend proc"},
		{name: "proc with batchstats", k: knobs{backend: "proc", batchStats: "bounce-rate", policy: "fair"}, wantErr: "-backend proc"},
		{name: "proc with tenants", k: knobs{backend: "proc", tenants: 2, policy: "fair"}, wantErr: "-tenants"},
		{name: "proc with nofuse", k: knobs{backend: "proc", nofuse: true, policy: "fair"}, wantErr: "-nofuse"},
		{name: "skew exponent", k: knobs{backend: "sim", skew: 1.5, policy: "fair"}},
		{name: "shred forced on", k: knobs{backend: "sim", shred: "on", policy: "fair"}},
		{name: "shred forced off", k: knobs{backend: "sim", shred: "off", policy: "fair"}},
		{name: "skew exactly 1", k: knobs{skew: 1, policy: "fair"}, wantErr: "-skew"},
		{name: "skew negative", k: knobs{skew: -0.5, policy: "fair"}, wantErr: "-skew"},
		{name: "skew below 1", k: knobs{skew: 0.8, policy: "fair"}, wantErr: "-skew"},
		{name: "unknown shred mode", k: knobs{shred: "maybe", policy: "fair"}, wantErr: "-shred"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFlags(c.k)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error mentioning %q, got nil", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}
