package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name      string
		mem       int64
		faultRate float64
		straggle  float64
		chaos     float64
		mtbf      float64
		seed      int64
		tenants   int
		policy    string
		wantErr   string // "" = valid
	}{
		{name: "defaults", straggle: 0.25, policy: "fair"},
		{name: "fifo policy", straggle: 0, tenants: 4, policy: "fifo"},
		{name: "boundary rates", faultRate: 1, straggle: 1, policy: "fair"},
		{name: "chaos rate", chaos: 4, seed: 7, policy: "fair"},
		{name: "mtbf hazard", mtbf: 250, policy: "fair"},
		{name: "faultrate above 1", faultRate: 1.2, policy: "fair", wantErr: "-faultrate"},
		{name: "faultrate negative", faultRate: -0.1, policy: "fair", wantErr: "-faultrate"},
		{name: "mem negative", mem: -1, policy: "fair", wantErr: "-mem"},
		{name: "straggle above 1", straggle: 1.5, policy: "fair", wantErr: "-straggle"},
		{name: "chaos negative", chaos: -2, policy: "fair", wantErr: "-chaos"},
		{name: "mtbf negative", mtbf: -50, policy: "fair", wantErr: "-mtbf"},
		{name: "chaos and mtbf both set", chaos: 2, mtbf: 500, policy: "fair", wantErr: "-chaos and -mtbf"},
		{name: "seed negative", seed: -3, policy: "fair", wantErr: "-seed"},
		{name: "tenants negative", tenants: -2, policy: "fair", wantErr: "-tenants"},
		{name: "unknown policy", policy: "lottery", wantErr: "-policy"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFlags(c.mem, c.faultRate, c.straggle, c.chaos, c.mtbf, c.seed, c.tenants, c.policy)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error mentioning %q, got nil", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}
