// Partitioned graph analytics (paper Sec. 2.2): connectedComps(g) followed
// by avgDistances on each component — the composability example. Average
// Distances has three levels of parallelism: components x BFS sources x
// the BFS frontier expansion itself, all inside one flattened dataflow.
//
//	go run ./examples/graphcomponents
package main

import (
	"fmt"
	"log"
	"sort"

	"matryoshka/internal/cluster"
	"matryoshka/internal/tasks"
)

func main() {
	spec := tasks.AvgDistSpec{
		Components:        6,
		VerticesPerComp:   24,
		ExtraEdgesPerComp: 10,
		Seed:              11,
	}
	cc := cluster.DefaultConfig()

	o := spec.Run(tasks.Matryoshka, cc)
	if o.Err != nil {
		log.Fatal(o.Err)
	}
	value := o.Value.(tasks.AvgDistValue)

	fmt.Println("average pairwise BFS distance per connected component:")
	var comps []int64
	for c := range value {
		comps = append(comps, c)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i] < comps[j] })
	for _, c := range comps {
		fmt.Printf("  component %3d: %.3f\n", c, value[c])
	}

	// Cross-check against the sequential reference.
	ref := spec.Reference()
	for c, want := range ref {
		if got := value[c]; got != want {
			log.Fatalf("component %d: %v != reference %v", c, got, want)
		}
	}
	fmt.Println("\nmatches the sequential reference exactly")

	inner := spec.Run(tasks.InnerParallel, cc)
	fmt.Printf("\njobs: matryoshka=%d vs inner-parallel=%d (one per component x source x BFS level)\n",
		o.Jobs, inner.Jobs)
	fmt.Printf("simulated time: matryoshka=%.1fs vs inner-parallel=%.1fs\n", o.Seconds, inner.Seconds)
}
