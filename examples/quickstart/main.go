// Quickstart: the paper's per-day bounce rate (Listing 1) as a
// nested-parallel program, flattened by Matryoshka and executed on the
// simulated dataflow engine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"matryoshka/internal/core"
	"matryoshka/internal/engine"
)

func main() {
	sess, err := engine.NewSession(engine.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// A tiny page-visit log: (day, visitor IP).
	visits := engine.Parallelize(sess, []engine.Pair[string, int64]{
		{Key: "mon", Val: 1}, {Key: "mon", Val: 1}, {Key: "mon", Val: 2},
		{Key: "tue", Val: 3}, {Key: "tue", Val: 4}, {Key: "tue", Val: 4}, {Key: "tue", Val: 5},
		{Key: "wed", Val: 6},
	}, 0)

	// groupByKeyIntoNestedBag: one nested bag of visits per day. This is
	// the operation plain dataflow engines cannot express — its result is
	// a bag of bags, which Matryoshka represents flat (tagged).
	perDay, err := core.GroupByKeyIntoNestedBag(visits, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Inside the (lifted) UDF: parallel operations per group, exactly
	// Listing 1 of the paper.
	countsPerIP := core.ReduceByKeyBag(
		core.MapBag(perDay.Inner, func(ip int64) engine.Pair[int64, int64] { return engine.KV(ip, int64(1)) }),
		func(a, b int64) int64 { return a + b })
	numBounces := core.CountBag(core.FilterBag(countsPerIP,
		func(p engine.Pair[int64, int64]) bool { return p.Val == 1 }))
	numTotal := core.CountBag(core.DistinctBag(perDay.Inner))
	rate := core.BinaryScalarOp(numBounces, numTotal, func(b, t int64) float64 {
		return float64(b) / float64(t)
	})

	// Pair each day with its rate and collect.
	out := core.BinaryScalarOp(perDay.Outer, rate, func(day string, r float64) engine.Pair[string, float64] {
		return engine.KV(day, r)
	})
	rows, err := out.Collect()
	if err != nil {
		log.Fatal(err)
	}
	type row struct {
		day  string
		rate float64
	}
	var sorted []row
	for _, kv := range rows {
		sorted = append(sorted, row{kv.Key, kv.Val})
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].day < sorted[j].day })

	fmt.Println("bounce rate per day:")
	for _, r := range sorted {
		fmt.Printf("  %-4s %.2f\n", r.day, r.rate)
	}
	fmt.Printf("\nlaunched %d dataflow jobs (independent of the number of days)\n", sess.Stats().Jobs)
	fmt.Printf("simulated cluster time: %.2fs\n", sess.Clock())
}
