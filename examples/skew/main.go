// Data skew (paper Sec. 9.5): bounce rate over 256 days whose sizes follow
// a Zipf distribution — a few huge days, many tiny ones. The outer-parallel
// workaround materializes whole days in single tasks and OOMs on the head
// group; Matryoshka's flat representation spreads every group across the
// cluster and barely notices the skew.
//
//	go run ./examples/skew
package main

import (
	"fmt"

	"matryoshka/internal/cluster"
	"matryoshka/internal/tasks"
)

func main() {
	cc := cluster.DefaultConfig()
	cc.Machines = 8
	cc.MemoryPerMachine = 24 << 20 // small machines make the head group bite

	skewed := tasks.BounceRateSpec{Visits: 200_000, Days: 256, Skewed: true, Seed: 3}
	uniform := skewed
	uniform.Skewed = false

	fmt.Println("bounce rate, 256 groups, 200k visits:")
	fmt.Printf("%-28s %12s %8s %s\n", "run", "sim seconds", "jobs", "outcome")
	report := func(name string, o tasks.Outcome) {
		out := "ok"
		if o.OOM {
			out = "OUT OF MEMORY"
		} else if o.Err != nil {
			out = o.Err.Error()
		}
		fmt.Printf("%-28s %12.1f %8d %s\n", name, o.Seconds, o.Jobs, out)
	}

	report("matryoshka / uniform", uniform.Run(tasks.Matryoshka, cc))
	report("matryoshka / zipf", skewed.Run(tasks.Matryoshka, cc))
	report("inner-parallel / zipf", skewed.Run(tasks.InnerParallel, cc))
	report("outer-parallel / zipf", skewed.Run(tasks.OuterParallel, cc))

	fmt.Println("\nMatryoshka's runtime under skew stays close to the uniform run;")
	fmt.Println("the workarounds pay per-group overheads or hold whole groups in memory.")
}
