// Two-phase flattening, made visible: the bounce-rate program of the
// paper's Listing 1 is built as a nested-program AST, run through the
// parsing phase (which prints the explicitly nested-parallel program of
// Listing 2, with the nesting primitives and lifted UDF annotated), and
// then through the lowering phase on the simulated engine.
//
//	go run ./examples/twophase
package main

import (
	"fmt"
	"log"
	"sort"

	"matryoshka/internal/core"
	"matryoshka/internal/engine"
	"matryoshka/internal/ir"
)

func main() {
	// --- Listing 1: the user's nested-parallel program ---
	udf := &ir.Fn{
		Params: []string{"day", "group"},
		Body: []ir.Stmt{
			ir.LetS{Name: "countsPerIP", E: ir.ReduceByKey{
				In: ir.Map{In: ir.Ref{Name: "group"},
					F: func(ip any) any { return engine.KV[any, any](ip, int64(1)) }},
				F: func(a, b any) any { return a.(int64) + b.(int64) },
			}},
			ir.LetS{Name: "numBounces", E: ir.Count{In: ir.Filter{
				In:   ir.Ref{Name: "countsPerIP"},
				Pred: func(e any) bool { return e.(engine.Pair[any, any]).Val.(int64) == 1 },
			}}},
			ir.LetS{Name: "numTotalVisitors", E: ir.Count{In: ir.Distinct{In: ir.Ref{Name: "group"}}}},
			ir.LetS{Name: "bounceRate", E: ir.BinOp{
				A: ir.Ref{Name: "numBounces"}, B: ir.Ref{Name: "numTotalVisitors"},
				F: func(a, b any) any { return float64(a.(int64)) / float64(b.(int64)) },
			}},
			ir.Return{E: ir.BinOp{A: ir.Ref{Name: "day"}, B: ir.Ref{Name: "bounceRate"},
				F: func(d, r any) any { return engine.KV[any, any](d, r) }}},
		},
	}
	prog := &ir.Program{
		Lets: []ir.Let{
			{Name: "visits", E: ir.Source{Name: "visits"}},
			{Name: "visitsPerDay", E: ir.GroupByKey{In: ir.Ref{Name: "visits"}}},
			{Name: "bounceRates", E: ir.Map{In: ir.Ref{Name: "visitsPerDay"}, UDF: udf}},
		},
		Result: "bounceRates",
	}

	// --- Parsing phase (compile time): Listing 1 -> Listing 2 ---
	parsed, err := ir.Parse(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== after the parsing phase (cf. the paper's Listing 2) ===")
	fmt.Println(parsed.Render())

	// --- Lowering phase (run time): Listing 2 -> flat engine program ---
	var data []any
	for _, v := range []struct {
		day string
		ip  int64
	}{
		{"mon", 1}, {"mon", 1}, {"mon", 2},
		{"tue", 3}, {"tue", 4}, {"tue", 4}, {"tue", 5},
	} {
		data = append(data, engine.KV[any, any](v.day, v.ip))
	}
	sess, err := engine.NewSession(engine.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := ir.Lower(parsed, sess, map[string][]any{"visits": data}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== after the lowering phase (flat execution) ===")
	type row struct {
		day  string
		rate float64
	}
	var rows []row
	for _, r := range res.([]any) {
		kv := r.(engine.Pair[any, any])
		rows = append(rows, row{kv.Key.(string), kv.Val.(float64)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].day < rows[j].day })
	for _, r := range rows {
		fmt.Printf("  %-4s bounce rate %.2f\n", r.day, r.rate)
	}
	fmt.Printf("\n%d jobs, %d stages on the simulated cluster (%.2fs)\n",
		sess.Stats().Jobs, sess.Stats().Stages, sess.Clock())
}
