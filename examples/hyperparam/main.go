// Hyperparameter optimization (paper Sec. 2.3): train K-means from many
// random initializations *in parallel*, while each training is itself
// parallel — two levels of parallelism in one dataflow job, with the
// training loop lifted per Sec. 6.
//
// The same search also runs under the two workarounds so you can see the
// job counts and simulated runtimes the paper's Fig. 1 is about.
//
//	go run ./examples/hyperparam
package main

import (
	"fmt"
	"log"

	"matryoshka/internal/cluster"
	"matryoshka/internal/datagen"
	"matryoshka/internal/ml"
	"matryoshka/internal/tasks"
)

func main() {
	spec := tasks.KMeansSpec{
		TotalPoints: 40_000,
		K:           4,
		Configs:     32, // 32 random centroid initializations
		Eps:         1e-6,
		MaxIters:    20,
		Seed:        7,
	}
	cc := cluster.DefaultConfig()

	fmt.Printf("K-means hyperparameter search: %d configs x %d points, k=%d\n\n",
		spec.Configs, spec.TotalPoints/spec.Configs, spec.K)

	var best []ml.Point
	for _, strat := range []tasks.Strategy{tasks.Matryoshka, tasks.InnerParallel, tasks.OuterParallel} {
		o := spec.Run(strat, cc)
		if o.Err != nil {
			log.Fatalf("%s failed: %v", strat, o.Err)
		}
		fmt.Printf("%-15s %8.1f simulated s, %5d jobs, %6d tasks\n",
			strat, o.Seconds, o.Jobs, o.Tasks)
		if strat == tasks.Matryoshka {
			best = pickBest(spec, o.Value.(tasks.KMeansValue))
		}
	}

	fmt.Println("\nbest model's centroids (lowest within-cluster sum of squares):")
	for _, m := range best {
		fmt.Printf("  (%7.2f, %7.2f)\n", m.X, m.Y)
	}
}

// pickBest scores every configuration's converged model and returns the
// winner — the "find the setting that works best" step of Sec. 2.3.
func pickBest(spec tasks.KMeansSpec, value tasks.KMeansValue) []ml.Point {
	points := datagen.GaussianPoints(spec.TotalPoints/spec.Configs, 4, spec.Seed)
	bestID, bestScore := -1, 0.0
	for id, means := range value {
		score := ml.WCSS(points, means)
		if bestID < 0 || score < bestScore {
			bestID, bestScore = id, score
		}
	}
	fmt.Printf("\nconfig %d wins with WCSS %.1f\n", bestID, bestScore)
	return value[bestID]
}
