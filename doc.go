// Package matryoshka is a from-scratch Go reproduction of "The Power of
// Nested Parallelism in Big Data Processing" (Gévay, Quiané-Ruiz, Markl;
// SIGMOD 2021): a system that flattens nested-parallel dataflow programs —
// parallel operations launched inside the UDFs of other parallel
// operations, including loops — into flat-parallel programs that run on a
// standard dataflow engine.
//
// The implementation is organized as:
//
//   - internal/engine — a Spark-like flat dataflow engine (lazy DAG,
//     stages, shuffles, broadcast joins, caching, actions-as-jobs);
//   - internal/cluster — a deterministic cluster simulator providing the
//     virtual clock, memory model and cost accounting the experiments
//     report;
//   - internal/core — the paper's contribution: nesting primitives
//     (InnerScalar, InnerBag, NestedBag), lifted operations and control
//     flow, and the runtime optimizer of the lowering phase;
//   - internal/ir — the nested-program front end with the compile-time
//     parsing phase;
//   - internal/tasks, internal/bench, cmd/matbench — the four evaluation
//     workloads under every execution strategy, and one experiment per
//     figure of the paper.
//
// See README.md for a tour, DESIGN.md for the architecture and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results.
package matryoshka
