module matryoshka

go 1.24
